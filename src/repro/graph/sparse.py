"""Sparse graph container used throughout the library.

The :class:`CSRGraph` wraps a ``scipy.sparse`` adjacency matrix together with
cached degree information.  It is deliberately immutable: every transformation
(adding self loops, extracting subgraphs) returns a new instance, which keeps
the propagation and sampling code free of aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphConstructionError


def _as_csr(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Coerce ``matrix`` to a canonical ``float64`` CSR matrix."""
    if isinstance(matrix, np.ndarray):
        csr = sp.csr_matrix(matrix.astype(np.float64))
    else:
        csr = matrix.tocsr().astype(np.float64)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    return csr


@dataclass(frozen=True)
class CSRGraph:
    """An undirected (or directed) graph stored as a CSR adjacency matrix.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse adjacency matrix.  Edge weights are allowed; most of
        the paper's experiments use unweighted graphs.
    """

    adjacency: sp.csr_matrix
    _degree_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        adj = _as_csr(self.adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise GraphConstructionError(
                f"adjacency must be square, got shape {adj.shape}"
            )
        object.__setattr__(self, "adjacency", adj)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_nodes: int | None = None,
        *,
        undirected: bool = True,
        weights: Sequence[float] | None = None,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Parameters
        ----------
        edges:
            Iterable of ``(src, dst)`` pairs or an ``(m, 2)`` integer array.
        num_nodes:
            Total number of nodes.  Inferred from the maximum node id when
            omitted.
        undirected:
            When true (default) each edge is inserted in both directions.
        weights:
            Optional per-edge weights, defaults to 1.0.
        """
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            if num_nodes is None:
                raise GraphConstructionError("empty edge list requires explicit num_nodes")
            return cls(sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64))
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphConstructionError(
                f"edges must be an (m, 2) array, got shape {edge_array.shape}"
            )
        src = edge_array[:, 0].astype(np.int64)
        dst = edge_array[:, 1].astype(np.int64)
        if (src < 0).any() or (dst < 0).any():
            raise GraphConstructionError("node indices must be non-negative")
        inferred = int(max(src.max(), dst.max())) + 1
        n = inferred if num_nodes is None else int(num_nodes)
        if n < inferred:
            raise GraphConstructionError(
                f"num_nodes={n} is smaller than the largest node id {inferred - 1}"
            )
        if weights is None:
            data = np.ones(len(src), dtype=np.float64)
        else:
            data = np.asarray(weights, dtype=np.float64)
            if data.shape[0] != src.shape[0]:
                raise GraphConstructionError("weights must have one entry per edge")
        if undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            data = np.concatenate([data, data])
        adj = sp.coo_matrix((data, (src, dst)), shape=(n, n)).tocsr()
        # Duplicate edges (including the reversed copy of a self loop) collapse
        # to weight 1 for unweighted graphs to keep the adjacency binary.
        if weights is None:
            adj.data = np.minimum(adj.data, 1.0)
        return cls(adj)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRGraph":
        """Build a graph from a dense adjacency matrix."""
        return cls(sp.csr_matrix(np.asarray(dense, dtype=np.float64)))

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``, counting each self loop once.

        The ``nnz`` count stores every off-diagonal edge twice and every self
        loop once, so ``m = (nnz + diag_count) / 2`` — the previously used
        ``nnz // 2 + diag_count`` overcounted whenever two or more self loops
        were present.
        """
        diag_count = int(np.count_nonzero(self.adjacency.diagonal()))
        return int((self.adjacency.nnz + diag_count) // 2)

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) nonzero entries."""
        return int(self.adjacency.nnz)

    def degrees(self, *, with_self_loops: bool = False) -> np.ndarray:
        """Node degree vector ``d_i`` (weighted out-degree).

        Parameters
        ----------
        with_self_loops:
            When true returns ``d_i + 1`` as used by the normalized adjacency
            with self loops.
        """
        key = ("deg", with_self_loops)
        if key not in self._degree_cache:
            deg = np.asarray(self.adjacency.sum(axis=1)).ravel()
            if with_self_loops:
                deg = deg + 1.0
            self._degree_cache[key] = deg
        return self._degree_cache[key]

    def degree_matrix(self, *, with_self_loops: bool = False) -> sp.csr_matrix:
        """Diagonal degree matrix ``D`` (or ``D̃`` with self loops)."""
        return sp.diags(self.degrees(with_self_loops=with_self_loops)).tocsr()

    def has_self_loops(self) -> bool:
        """Whether the adjacency stores any non-zero diagonal entry."""
        return bool(np.count_nonzero(self.adjacency.diagonal()) > 0)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def add_self_loops(self, weight: float = 1.0) -> "CSRGraph":
        """Return a new graph whose adjacency is ``Ã = A + weight * I``.

        Existing diagonal entries larger than ``weight`` are preserved.  Built
        by direct COO construction: the former ``tolil`` round-trip allocated
        one Python list per row and dominated preprocessing on large graphs.
        """
        n = self.num_nodes
        coo = self.adjacency.tocoo()
        off_diag = coo.row != coo.col
        diag_ids = np.arange(n, dtype=np.int64)
        rows = np.concatenate([coo.row[off_diag], diag_ids])
        cols = np.concatenate([coo.col[off_diag], diag_ids])
        data = np.concatenate(
            [coo.data[off_diag], np.maximum(self.adjacency.diagonal(), weight)]
        )
        return CSRGraph(sp.csr_matrix((data, (rows, cols)), shape=(n, n)))

    def remove_self_loops(self) -> "CSRGraph":
        """Return a new graph with the diagonal zeroed out (direct COO filter)."""
        n = self.num_nodes
        coo = self.adjacency.tocoo()
        off_diag = coo.row != coo.col
        return CSRGraph(
            sp.csr_matrix(
                (coo.data[off_diag], (coo.row[off_diag], coo.col[off_diag])),
                shape=(n, n),
            )
        )

    def subgraph(self, nodes: Sequence[int] | np.ndarray) -> "CSRGraph":
        """Induced subgraph on ``nodes`` (rows/columns restricted and relabelled)."""
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_nodes):
            raise GraphConstructionError("subgraph node indices out of range")
        sub = self.adjacency[idx][:, idx]
        return CSRGraph(sub.tocsr())

    def neighbors(self, node: int) -> np.ndarray:
        """Return the (out-)neighbour indices of ``node``."""
        if node < 0 or node >= self.num_nodes:
            raise GraphConstructionError(f"node {node} out of range [0, {self.num_nodes})")
        start, end = self.adjacency.indptr[node], self.adjacency.indptr[node + 1]
        return self.adjacency.indices[start:end].copy()

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (mostly for tests and examples)."""
        import networkx as nx

        return nx.from_scipy_sparse_array(self.adjacency)

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes:
            return False
        diff = (self.adjacency != other.adjacency)
        return diff.nnz == 0

    def __hash__(self) -> int:  # pragma: no cover - identity hash is sufficient
        return id(self)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_directed_edges="
            f"{self.num_directed_edges})"
        )
