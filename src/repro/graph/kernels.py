"""Zero-copy sparse kernels for the NAI online-inference hot path.

The inference engine repeatedly needs ``(Â_local @ X)[rows]`` for a shrinking
set of supporting rows.  Materialising ``Â_local[rows]`` with scipy fancy
indexing allocates a fresh CSR matrix at every depth step; this module instead
operates directly on the raw ``indptr/indices/data`` arrays of one CSR matrix
built per batch:

* :func:`masked_row_spmm` computes the SpMM for a set of *contiguous row
  runs*, writing into a caller-owned, preallocated output buffer.  Each run
  is dispatched to scipy's compiled ``csr_matvecs`` routine with zero-copy
  slices of the CSR arrays — no submatrix is ever constructed.
* :func:`contiguous_runs` converts a boolean row mask into those runs.
  Because :func:`~repro.graph.sampling.k_hop_neighborhood` orders the local
  nodes by hop distance, the "rows within ``h`` hops of the targets" mask is
  a *prefix* of the row range (a single run) until the first early exit, and
  stays highly clustered afterwards.
* :func:`hop_distances` is a multi-source BFS over the raw CSR arrays used to
  re-derive hop distances when early exits shrink the target set.
* :func:`extract_submatrix` builds the per-batch local matrix with a single
  row gather plus one vectorised column remap, avoiding scipy's slow
  ``[:, cols]`` fancy column indexing.

All kernels are dtype-parametric: they run in whatever floating dtype the
caller's buffers carry (the inference engine threads ``NAIConfig.dtype``
through here so the whole hot path can run in float32).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import ShapeError

try:  # pragma: no cover - exercised implicitly by every masked_row_spmm call
    from scipy.sparse import _sparsetools as _st

    _CSR_MATVECS = getattr(_st, "csr_matvecs", None)
except ImportError:  # pragma: no cover - very old / stripped-down scipy
    _CSR_MATVECS = None


def contiguous_runs(mask: np.ndarray) -> np.ndarray:
    """Decompose a boolean mask into ``(start, stop)`` runs of True entries.

    >>> contiguous_runs(np.array([True, True, False, True])).tolist()
    [[0, 2], [3, 4]]
    """
    mask = np.asarray(mask, dtype=bool)
    padded = np.concatenate(([False], mask, [False])).astype(np.int8)
    boundaries = np.flatnonzero(np.diff(padded))
    return boundaries.reshape(-1, 2)


def runs_nnz(indptr: np.ndarray, runs: np.ndarray) -> int:
    """Number of stored entries covered by the row ``runs`` of a CSR matrix."""
    if len(runs) == 0:
        return 0
    runs = np.asarray(runs)
    return int((indptr[runs[:, 1]] - indptr[runs[:, 0]]).sum())


def _check_spmm_buffers(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    source: np.ndarray,
    out: np.ndarray,
    *,
    assume_bounded: bool = False,
) -> None:
    num_rows = indptr.shape[0] - 1
    if source.ndim != 2 or out.ndim != 2:
        raise ShapeError("masked_row_spmm needs 2-D source and output buffers")
    if out.shape[0] != num_rows or source.shape[1] != out.shape[1]:
        raise ShapeError(
            f"buffer shapes {source.shape} -> {out.shape} do not match a "
            f"{num_rows}-row CSR matrix"
        )
    if not assume_bounded and indices.size and int(indices.max()) >= source.shape[0]:
        # The compiled kernel does no bounds checking: a short source buffer
        # would be read out of bounds in C rather than raise.  The scan is
        # O(nnz) per call, so hot loops dispatching the *same* immutable CSR
        # arrays every depth (whose columns are bounded by construction —
        # see extract_local_csr_arrays) pass assume_bounded=True to skip it.
        raise ShapeError(
            f"source has {source.shape[0]} rows but the CSR matrix references "
            f"column {int(indices.max())}"
        )
    if not (data.dtype == source.dtype == out.dtype):
        raise ShapeError(
            "masked_row_spmm requires matching dtypes, got "
            f"data={data.dtype}, source={source.dtype}, out={out.dtype}"
        )
    if not source.flags.c_contiguous or not out.flags.c_contiguous:
        raise ShapeError("masked_row_spmm buffers must be C-contiguous")


def _flat_nnz_positions(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat positions into ``indices``/``data`` of all entries of ``rows``.

    Returns ``(flat, row_ends)`` where ``flat`` indexes every stored entry of
    the selected rows in row order and ``row_ends`` is the exclusive cumulative
    entry count per selected row (so ``concatenate(([0], row_ends))`` is the
    compacted indptr).  This is the gather shared by every kernel that walks a
    row subset without materialising a submatrix.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows].astype(np.int64)
    lengths = indptr[rows + 1].astype(np.int64) - starts
    row_ends = np.cumsum(lengths)
    total = int(row_ends[-1]) if lengths.size else 0
    if total == 0:
        return np.empty(0, dtype=np.int64), row_ends
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (row_ends - lengths), lengths
    )
    return flat, row_ends


def masked_row_spmm(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    source: np.ndarray,
    out: np.ndarray,
    runs: np.ndarray,
    *,
    assume_bounded: bool = False,
) -> int:
    """``out[a:b] = (A @ source)[a:b]`` for every run ``(a, b)``; returns nnz.

    ``A`` is given by its raw CSR arrays; rows outside the runs are left
    untouched (the caller's double-buffering contract guarantees they are
    never read again).  Returns the number of stored entries visited, which
    is exactly the MAC count of the product divided by the feature width.
    ``assume_bounded`` skips the O(nnz) column-bounds scan for CSR arrays
    whose columns are known < ``source.shape[0]`` by construction.
    """
    _check_spmm_buffers(indptr, indices, data, source, out, assume_bounded=assume_bounded)
    num_cols = source.shape[0]
    width = source.shape[1]
    flat_source = source.reshape(-1)
    total = 0
    for a, b in runs:
        a, b = int(a), int(b)
        if b <= a:
            continue
        out[a:b] = 0.0
        if _CSR_MATVECS is not None:
            # The compiled routine reads absolute offsets from ``indptr``,
            # so the un-rebased slice indexes the full indices/data arrays.
            _CSR_MATVECS(
                b - a, num_cols, width,
                indptr[a:b + 1], indices, data,
                flat_source, out[a:b].reshape(-1),
            )
        else:  # pragma: no cover - fallback for scipy without _sparsetools
            lo, hi = int(indptr[a]), int(indptr[b])
            segment = sp.csr_matrix(
                (data[lo:hi], indices[lo:hi], indptr[a:b + 1] - lo),
                shape=(b - a, num_cols),
            )
            out[a:b] = segment @ source
        total += int(indptr[b] - indptr[a])
    return total


def gathered_row_spmm(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    source: np.ndarray,
    out: np.ndarray,
    rows: np.ndarray,
    *,
    assume_bounded: bool = False,
) -> int:
    """``out[rows] = (A @ source)[rows]`` for an arbitrary (sorted) row set.

    Compacts the selected rows' entries into temporary CSR arrays with one
    vectorised gather and runs a single compiled SpMM over them.  Costs one
    extra pass over the selected nnz, but issues exactly one kernel call —
    the right trade once a row mask fragments into many contiguous runs.
    """
    _check_spmm_buffers(indptr, indices, data, source, out, assume_bounded=assume_bounded)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return 0
    flat, row_ends = _flat_nnz_positions(indptr, rows)
    total = flat.size
    if total == 0:
        out[rows] = 0.0
        return 0
    sub_indptr = np.concatenate(([0], row_ends)).astype(indices.dtype)
    sub_indices = indices[flat]
    sub_data = data[flat]
    block = np.zeros((rows.size, source.shape[1]), dtype=source.dtype)
    if _CSR_MATVECS is not None:
        _CSR_MATVECS(
            rows.size, source.shape[0], source.shape[1],
            sub_indptr, sub_indices, sub_data,
            source.reshape(-1), block.reshape(-1),
        )
    else:  # pragma: no cover - fallback for scipy without _sparsetools
        segment = sp.csr_matrix(
            (sub_data, sub_indices, sub_indptr), shape=(rows.size, source.shape[0])
        )
        block = segment @ source
    out[rows] = block
    return total


#: Above this many contiguous runs, per-run kernel dispatch overhead exceeds
#: the extra gather pass of :func:`gathered_row_spmm`.  The crossover depends
#: on nnz-per-run and feature width; ``NAIConfig.run_dispatch_threshold``
#: exposes it as a tunable so benchmarks can sweep it.
_MAX_ZERO_COPY_RUNS = 8


def auto_masked_spmm(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    source: np.ndarray,
    out: np.ndarray,
    mask: np.ndarray,
    *,
    max_zero_copy_runs: int = _MAX_ZERO_COPY_RUNS,
    assume_bounded: bool = False,
) -> int:
    """Masked SpMM choosing the cheaper strategy for the mask's shape.

    Clustered masks (the common case — rows are hop-ordered) go through the
    zero-copy per-run path; fragmented masks compact their rows first so a
    single kernel call covers them.  ``max_zero_copy_runs`` sets the run-count
    crossover between the two strategies.  Either way exactly the masked rows
    are computed, so the returned nnz count equals the algorithmic MAC count.
    """
    runs = contiguous_runs(mask)
    if len(runs) <= max_zero_copy_runs:
        return masked_row_spmm(
            indptr, indices, data, source, out, runs, assume_bounded=assume_bounded
        )
    return gathered_row_spmm(
        indptr, indices, data, source, out, np.flatnonzero(mask),
        assume_bounded=assume_bounded,
    )


def gather_columns(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated column indices of ``rows`` without building a submatrix."""
    flat, _ = _flat_nnz_positions(indptr, rows)
    return indices[flat]


def hop_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    num_nodes: int,
    max_hops: int,
) -> np.ndarray:
    """Multi-source BFS hop distances over raw CSR arrays.

    Nodes further than ``max_hops`` from every source keep the sentinel value
    ``num_nodes + 1`` (greater than any reachable distance), so callers can
    threshold the result directly with ``dist <= h``.
    """
    unreachable = num_nodes + 1
    dist = np.full(num_nodes, unreachable, dtype=np.int64)
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    if frontier.size == 0:
        return dist
    dist[frontier] = 0
    for hop in range(1, max_hops + 1):
        if frontier.size == 0:
            break
        neighbors = gather_columns(indptr, indices, frontier)
        new = np.unique(neighbors)
        new = new[dist[new] == unreachable]
        dist[new] = hop
        frontier = new
    return dist


def global_to_local_map(node_ids: np.ndarray, num_nodes: int) -> np.ndarray:
    """Inverse-permutation map: ``map[global_id] = local_row`` (-1 elsewhere).

    Replaces the per-node Python-dict lookups the sampling layer used to
    build; one vectorised gather turns any array of global ids into local
    rows.
    """
    lookup = np.full(num_nodes, -1, dtype=np.int64)
    lookup[np.asarray(node_ids, dtype=np.int64)] = np.arange(
        len(node_ids), dtype=np.int64
    )
    return lookup


def extract_local_csr_arrays(
    matrix: sp.csr_matrix,
    node_ids: np.ndarray,
    *,
    lookup: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw ``(indptr, indices, data)`` of ``matrix[node_ids][:, node_ids]``.

    One vectorised pass over the selected rows: gather the flat nnz
    positions, remap the column indices through the inverse-permutation
    ``lookup`` and drop the columns that fall outside the subgraph.  No
    intermediate scipy matrix is built — the result feeds
    :func:`masked_row_spmm` directly, and scipy's (much slower) fancy
    ``[:, cols]`` column indexing is never invoked.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if lookup is None:
        lookup = global_to_local_map(node_ids, matrix.shape[1])
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    index_dtype = indices.dtype

    flat, row_ends = _flat_nnz_positions(indptr, node_ids)
    if flat.size == 0:
        empty_ptr = np.zeros(node_ids.shape[0] + 1, dtype=index_dtype)
        return empty_ptr, np.empty(0, dtype=index_dtype), np.empty(0, dtype=data.dtype)
    cols = lookup[indices[flat]]
    keep = cols >= 0
    kept_before = np.concatenate(([0], np.cumsum(keep)))
    gathered_indptr = np.concatenate(([0], row_ends))
    new_indptr = kept_before[gathered_indptr].astype(index_dtype)
    new_indices = cols[keep].astype(index_dtype)
    new_data = data[flat[keep]]
    return new_indptr, new_indices, new_data


def extract_submatrix(
    matrix: sp.csr_matrix,
    node_ids: np.ndarray,
    *,
    lookup: np.ndarray | None = None,
) -> sp.csr_matrix:
    """``matrix[node_ids][:, node_ids]`` via :func:`extract_local_csr_arrays`."""
    node_ids = np.asarray(node_ids, dtype=np.int64)
    new_indptr, new_indices, new_data = extract_local_csr_arrays(
        matrix, node_ids, lookup=lookup
    )
    return sp.csr_matrix(
        (new_data, new_indices, new_indptr),
        shape=(node_ids.shape[0], node_ids.shape[0]),
    )


def masked_row_spmm_reference(
    matrix: sp.csr_matrix,
    source: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Naive ``matrix[rows] @ source`` — the oracle the kernel tests check against."""
    return np.asarray(matrix[rows] @ source)
