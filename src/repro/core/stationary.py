"""Stationary feature state ``X^(∞)`` (Eqs. 6-7 of the paper).

When features are propagated infinitely many times with the convolution
matrix ``Â = D̃^(γ−1) Ã D̃^(−γ)``, the propagated adjacency converges to

    Â^(∞)_{i,j} = (d_i + 1)^γ (d_j + 1)^(1−γ) / (2m + n)

so the stationary feature of node ``i`` is a degree-scaled copy of one global
vector:

    X^(∞)_i = (d_i + 1)^γ / (2m + n) * Σ_j (d_j + 1)^(1−γ) x_j

The global weighted feature sum only has to be computed once per graph; per
batch, the stationary features are obtained with a single scaling.  Both NAP
variants compare propagated features against this reference to detect
(over-)smoothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError
from ..graph.normalization import NormalizationScheme, resolve_gamma
from ..graph.sparse import CSRGraph
from .reduction import reproducible_weighted_sum


@dataclass(frozen=True)
class StationaryState:
    """Cached quantities needed to evaluate ``X^(∞)`` for arbitrary node subsets.

    Attributes
    ----------
    weighted_feature_sum:
        The global vector ``Σ_j (d_j + 1)^(1−γ) x_j`` of shape ``(f,)``.
    degrees_with_loops:
        ``d_i + 1`` for every node of the full graph.
    normalizer:
        The scalar ``2m + n``.
    gamma:
        Convolution coefficient used to build the state.
    """

    weighted_feature_sum: np.ndarray
    degrees_with_loops: np.ndarray
    normalizer: float
    gamma: float

    @property
    def num_nodes(self) -> int:
        return int(self.degrees_with_loops.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.weighted_feature_sum.shape[0])

    def features_for(self, node_ids: np.ndarray | None = None) -> np.ndarray:
        """Stationary features ``X^(∞)`` for ``node_ids`` (or every node).

        The result has shape ``(len(node_ids), f)`` and costs one outer
        product — ``O(b · f)`` for a batch of ``b`` nodes.
        """
        if node_ids is None:
            degrees = self.degrees_with_loops
        else:
            node_ids = np.asarray(node_ids, dtype=np.int64)
            if node_ids.size and (node_ids.min() < 0 or node_ids.max() >= self.num_nodes):
                raise ShapeError("node ids out of range for the stationary state")
            degrees = self.degrees_with_loops[node_ids]
        scale = np.power(degrees, self.gamma) / self.normalizer
        return np.outer(scale, self.weighted_feature_sum)

    def dense_infinite_adjacency(self) -> np.ndarray:
        """Materialise ``Â^(∞)`` densely (Eq. 7) — only sensible for small graphs."""
        left = np.power(self.degrees_with_loops, self.gamma)
        right = np.power(self.degrees_with_loops, 1.0 - self.gamma)
        return np.outer(left, right) / self.normalizer


def compute_stationary_state(
    graph: CSRGraph,
    features: np.ndarray,
    *,
    gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    dtype: np.dtype | str = np.float64,
) -> StationaryState:
    """Compute the cached stationary state for ``graph`` and ``features``.

    The global weighted feature sum costs ``O(n · f)`` multiply-accumulates;
    this is the dominant part of the "stationary state computation" term in
    the paper's complexity analysis (Table I).  ``dtype`` selects the
    floating precision of the cached vectors (``NAIConfig.dtype`` threads the
    inference engine's precision through here so the whole hot path runs in
    one dtype).
    """
    features = np.asarray(features, dtype=np.dtype(dtype))
    if features.ndim != 2 or features.shape[0] != graph.num_nodes:
        raise ShapeError(
            f"features must have shape (n, f) with n={graph.num_nodes}, got {features.shape}"
        )
    coeff = resolve_gamma(gamma)
    degrees = (graph.degrees() + 1.0).astype(features.dtype)
    normalizer = 2.0 * graph.num_edges + graph.num_nodes
    weights = np.power(degrees, np.asarray(1.0 - coeff, dtype=features.dtype))
    # Exact, order-independent summation (see repro.core.reduction): a
    # sharded deployment reduces per-shard partial sums of the very same
    # product terms, and exactness is what makes that reduction bit-identical
    # to this single-process path for every partition of the nodes.
    weighted_sum = reproducible_weighted_sum(weights, features, features.dtype)
    return StationaryState(
        weighted_feature_sum=weighted_sum,
        degrees_with_loops=degrees,
        normalizer=float(normalizer),
        gamma=coeff,
    )
