"""Classifier training loops shared by the NAI pipeline and the baselines.

Every classifier in the repository is trained full-batch with Adam, cross
entropy (optionally mixed with a distillation term) and early stopping on
validation accuracy, mirroring the paper's experimental protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.modules import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from .config import TrainingConfig


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: list[float]
    val_accuracy: list[float]
    best_epoch: int
    best_val_accuracy: float

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


def _forward_logits(
    classifier: Module,
    propagated: Sequence[np.ndarray],
    node_idx: np.ndarray,
) -> Tensor:
    """Run ``classifier`` on the rows ``node_idx`` of every propagated matrix."""
    inputs = [Tensor(matrix[node_idx]) for matrix in propagated]
    return classifier(inputs)


def train_classifier(
    classifier: Module,
    propagated: Sequence[np.ndarray],
    labels: np.ndarray,
    train_idx: np.ndarray,
    val_idx: np.ndarray,
    *,
    config: TrainingConfig,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] | None = None,
) -> TrainingHistory:
    """Train a depth-wise classifier full-batch with early stopping.

    Parameters
    ----------
    classifier:
        Any :class:`~repro.models.base.DepthwiseClassifier` (or module with the
        same call signature).
    propagated:
        Precomputed ``[X^(0), ..., X^(k)]`` on the training graph.
    labels:
        Integer labels for every training-graph node.
    train_idx, val_idx:
        Local (training-graph) indices of labelled training and validation
        nodes.
    config:
        Optimisation hyper-parameters.
    loss_fn:
        Optional replacement for plain cross entropy; receives the logits of
        the training nodes and their labels.  Used by the distillation stages.
    """
    labels = np.asarray(labels, dtype=np.int64)
    train_idx = np.asarray(train_idx, dtype=np.int64)
    val_idx = np.asarray(val_idx, dtype=np.int64)
    optimizer = Adam(classifier.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    criterion = loss_fn if loss_fn is not None else F.cross_entropy

    history = TrainingHistory(train_loss=[], val_accuracy=[], best_epoch=-1, best_val_accuracy=-1.0)
    best_state: dict[str, np.ndarray] | None = None
    epochs_without_improvement = 0

    for epoch in range(config.epochs):
        classifier.train()
        optimizer.zero_grad()
        logits = _forward_logits(classifier, propagated, train_idx)
        loss = criterion(logits, labels[train_idx])
        loss.backward()
        optimizer.step()
        history.train_loss.append(float(loss.data))

        classifier.eval()
        if val_idx.size:
            val_logits = _forward_logits(classifier, propagated, val_idx)
            val_acc = F.accuracy_from_logits(val_logits, labels[val_idx])
        else:
            val_acc = float("nan")
        history.val_accuracy.append(val_acc)

        improved = np.isnan(val_acc) or val_acc > history.best_val_accuracy
        if improved:
            history.best_val_accuracy = 0.0 if np.isnan(val_acc) else val_acc
            history.best_epoch = epoch
            best_state = classifier.state_dict()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
        if config.verbose and epoch % 20 == 0:
            print(f"epoch {epoch:3d} loss {loss.data:.4f} val_acc {val_acc:.4f}")
        if epochs_without_improvement >= config.patience:
            break

    if best_state is not None:
        classifier.load_state_dict(best_state)
    classifier.eval()
    return history


def evaluate_classifier(
    classifier: Module,
    propagated: Sequence[np.ndarray],
    labels: np.ndarray,
    node_idx: np.ndarray,
) -> float:
    """Accuracy of ``classifier`` on ``node_idx``."""
    classifier.eval()
    logits = _forward_logits(classifier, propagated, np.asarray(node_idx, dtype=np.int64))
    return F.accuracy_from_logits(logits, np.asarray(labels)[node_idx])


def predict_logits(
    classifier: Module,
    propagated: Sequence[np.ndarray],
    node_idx: np.ndarray | None = None,
) -> np.ndarray:
    """Raw logits of ``classifier`` for ``node_idx`` (or every node)."""
    classifier.eval()
    if node_idx is None:
        node_idx = np.arange(propagated[0].shape[0])
    logits = _forward_logits(classifier, propagated, np.asarray(node_idx, dtype=np.int64))
    return logits.data.copy()
