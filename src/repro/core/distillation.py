"""Inception Distillation (Section III-C of the paper).

The per-depth classifiers ``f^(1) .. f^(k)`` that the NAI framework relies on
are trained in three stages:

1. **Base training** — the deepest classifier ``f^(k)`` is trained with plain
   cross entropy on the labelled nodes.
2. **Single-Scale Distillation** (Eq. 14-17) — every shallower classifier
   ``f^(l)`` is trained with a mixture of hard-label cross entropy and a
   soft-target distillation term whose teacher is ``f^(k)``.
3. **Multi-Scale Distillation** (Eq. 18-21) — an ensemble teacher is built by
   attention-weighted voting over the ``r`` deepest (already enhanced)
   classifiers, and every shallower classifier is refined against it.  The
   attention vectors of the ensemble are trained jointly with each student,
   acting as a learned regulariser.

The ablation switches in :class:`~repro.core.config.DistillationConfig`
reproduce the "w/o ID", "w/o SS" and "w/o MS" rows of Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..models.base import DepthwiseClassifier, ScalableGNN
from ..nn import functional as F
from ..nn.init import normal
from ..nn.modules import Parameter
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate
from .config import DistillationConfig, TrainingConfig
from .training import TrainingHistory, predict_logits, train_classifier


@dataclass
class DistillationResult:
    """Everything produced by :meth:`InceptionDistillation.train`.

    Attributes
    ----------
    classifiers:
        ``[f^(1), ..., f^(k)]`` — index ``l-1`` holds the classifier for
        propagation depth ``l``.
    histories:
        Training history per stage and depth, keyed by ``"base"``,
        ``"single:<depth>"`` and ``"multi:<depth>"``.
    """

    classifiers: list[DepthwiseClassifier]
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def classifier_at(self, depth: int) -> DepthwiseClassifier:
        """Return ``f^(depth)`` (1-indexed, as in the paper)."""
        if not 1 <= depth <= len(self.classifiers):
            raise ConfigurationError(
                f"depth must lie in [1, {len(self.classifiers)}], got {depth}"
            )
        return self.classifiers[depth - 1]


class InceptionDistillation:
    """Trainer for the per-depth classifiers of a scalable-GNN backbone."""

    def __init__(
        self,
        backbone: ScalableGNN,
        *,
        config: DistillationConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.backbone = backbone
        self.config = config if config is not None else DistillationConfig()
        self.rng = np.random.default_rng(rng)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def train(
        self,
        propagated: Sequence[np.ndarray],
        labels: np.ndarray,
        labeled_idx: np.ndarray,
        distill_idx: np.ndarray,
        val_idx: np.ndarray,
    ) -> DistillationResult:
        """Train ``f^(1) .. f^(k)`` with Inception Distillation.

        Parameters
        ----------
        propagated:
            Precomputed ``[X^(0), ..., X^(k)]`` on the training graph.
        labels:
            Integer labels for every training-graph node (only the rows in
            ``labeled_idx`` and ``val_idx`` are ever read).
        labeled_idx:
            Labelled node set ``V_l`` (hard-label supervision).
        distill_idx:
            Distillation node set ``V_train`` (labelled + unlabelled observed
            nodes) over which soft targets are matched.
        val_idx:
            Validation nodes for early stopping / model selection.
        """
        depth = self.backbone.depth
        if len(propagated) < depth + 1:
            raise ConfigurationError(
                f"expected {depth + 1} propagated matrices, got {len(propagated)}"
            )
        labels = np.asarray(labels, dtype=np.int64)
        labeled_idx = np.asarray(labeled_idx, dtype=np.int64)
        distill_idx = np.asarray(distill_idx, dtype=np.int64)
        val_idx = np.asarray(val_idx, dtype=np.int64)

        classifiers = self.backbone.make_all_classifiers()
        result = DistillationResult(classifiers=classifiers)
        train_cfg = self.config.training

        # Stage 1: base training of the deepest classifier with cross entropy.
        history = train_classifier(
            classifiers[depth - 1], propagated, labels, labeled_idx, val_idx, config=train_cfg
        )
        result.histories["base"] = history

        # Stage 2: single-scale distillation (or plain CE when disabled).
        teacher_logits = predict_logits(classifiers[depth - 1], propagated, distill_idx)
        for student_depth in range(1, depth):
            key = f"single:{student_depth}"
            student = classifiers[student_depth - 1]
            if self.config.enable_single_scale:
                result.histories[key] = self._train_single_scale(
                    student, propagated, labels, labeled_idx, distill_idx, val_idx,
                    teacher_logits=teacher_logits, config=train_cfg,
                )
            else:
                result.histories[key] = train_classifier(
                    student, propagated, labels, labeled_idx, val_idx, config=train_cfg
                )

        # Stage 3: multi-scale distillation against the ensemble teacher.
        if self.config.enable_multi_scale and depth >= 2:
            ensemble_depths = self._ensemble_depths()
            member_probs = {
                member: F.softmax(Tensor(predict_logits(classifiers[member - 1], propagated)), axis=1).data
                for member in ensemble_depths
            }
            attention = {
                member: Parameter(
                    normal(self.backbone.num_classes, 1, scale=0.05, rng=self.rng),
                    name=f"ensemble_s_{member}",
                )
                for member in ensemble_depths
            }
            for student_depth in range(1, depth):
                key = f"multi:{student_depth}"
                result.histories[key] = self._train_multi_scale(
                    classifiers[student_depth - 1],
                    propagated,
                    labels,
                    labeled_idx,
                    distill_idx,
                    val_idx,
                    member_probs=member_probs,
                    attention=attention,
                    config=train_cfg,
                )
        return result

    # ------------------------------------------------------------------ #
    # Stage 2: single-scale distillation
    # ------------------------------------------------------------------ #
    def _train_single_scale(
        self,
        student: DepthwiseClassifier,
        propagated: Sequence[np.ndarray],
        labels: np.ndarray,
        labeled_idx: np.ndarray,
        distill_idx: np.ndarray,
        val_idx: np.ndarray,
        *,
        teacher_logits: np.ndarray,
        config: TrainingConfig,
    ) -> TrainingHistory:
        temperature = self.config.temperature_single
        lam = self.config.lambda_single
        teacher_soft = F.softmax(Tensor(teacher_logits), axis=1, temperature=temperature).data

        optimizer = Adam(student.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        history = TrainingHistory(train_loss=[], val_accuracy=[], best_epoch=-1, best_val_accuracy=-1.0)
        best_state = None
        stale = 0
        for epoch in range(config.epochs):
            student.train()
            optimizer.zero_grad()
            distill_logits = student([Tensor(m[distill_idx]) for m in propagated])
            labeled_logits = student([Tensor(m[labeled_idx]) for m in propagated])
            hard_loss = F.cross_entropy(labeled_logits, labels[labeled_idx])
            soft_loss = F.soft_cross_entropy(
                distill_logits * (1.0 / temperature), teacher_soft
            )
            loss = hard_loss * (1.0 - lam) + soft_loss * (lam * temperature ** 2)
            loss.backward()
            optimizer.step()
            history.train_loss.append(float(loss.data))

            student.eval()
            val_acc = self._validation_accuracy(student, propagated, labels, val_idx)
            history.val_accuracy.append(val_acc)
            if np.isnan(val_acc) or val_acc > history.best_val_accuracy:
                history.best_val_accuracy = 0.0 if np.isnan(val_acc) else val_acc
                history.best_epoch = epoch
                best_state = student.state_dict()
                stale = 0
            else:
                stale += 1
            if stale >= config.patience:
                break
        if best_state is not None:
            student.load_state_dict(best_state)
        student.eval()
        return history

    # ------------------------------------------------------------------ #
    # Stage 3: multi-scale distillation
    # ------------------------------------------------------------------ #
    def _ensemble_depths(self) -> list[int]:
        """Depths ``k-r+1 .. k`` voting in the ensemble teacher (Eq. 18)."""
        depth = self.backbone.depth
        size = min(self.config.ensemble_size, depth)
        return list(range(depth - size + 1, depth + 1))

    def _ensemble_prediction(
        self,
        member_probs: dict[int, np.ndarray],
        attention: dict[int, Parameter],
        node_idx: np.ndarray,
    ) -> Tensor:
        """Attention-weighted ensemble prediction ``z̄`` for ``node_idx`` (Eq. 18)."""
        members = sorted(member_probs)
        scores = []
        for member in members:
            probs = Tensor(member_probs[member][node_idx])
            scores.append((probs @ attention[member]).sigmoid())
        stacked = concatenate(scores, axis=1)
        shifted = stacked - Tensor(stacked.data.max(axis=1, keepdims=True))
        exponentials = shifted.exp()
        weights = exponentials / exponentials.sum(axis=1, keepdims=True)
        combined = None
        for position, member in enumerate(members):
            contribution = Tensor(member_probs[member][node_idx]) * weights[:, position:position + 1]
            combined = contribution if combined is None else combined + contribution
        return F.softmax(combined, axis=1)

    def _train_multi_scale(
        self,
        student: DepthwiseClassifier,
        propagated: Sequence[np.ndarray],
        labels: np.ndarray,
        labeled_idx: np.ndarray,
        distill_idx: np.ndarray,
        val_idx: np.ndarray,
        *,
        member_probs: dict[int, np.ndarray],
        attention: dict[int, Parameter],
        config: TrainingConfig,
    ) -> TrainingHistory:
        temperature = self.config.temperature_multi
        lam = self.config.lambda_multi
        label_targets = F.one_hot(labels[labeled_idx], self.backbone.num_classes)

        parameters = list(student.parameters()) + list(attention.values())
        optimizer = Adam(parameters, lr=config.lr, weight_decay=config.weight_decay)
        history = TrainingHistory(train_loss=[], val_accuracy=[], best_epoch=-1, best_val_accuracy=-1.0)
        best_state = None
        stale = 0
        for epoch in range(config.epochs):
            student.train()
            optimizer.zero_grad()
            # Ensemble teacher (Eq. 18) and its hard-label constraint (Eq. 20).
            teacher_labeled = self._ensemble_prediction(member_probs, attention, labeled_idx)
            teacher_loss = F.soft_target_cross_entropy(teacher_labeled, label_targets)
            # Student losses (Eq. 16 and Eq. 21).
            labeled_logits = student([Tensor(m[labeled_idx]) for m in propagated])
            distill_logits = student([Tensor(m[distill_idx]) for m in propagated])
            hard_loss = F.cross_entropy(labeled_logits, labels[labeled_idx])
            teacher_distill = self._ensemble_prediction(member_probs, attention, distill_idx)
            soft_targets = F.softmax(teacher_distill, axis=1, temperature=temperature)
            soft_loss = F.soft_cross_entropy(distill_logits * (1.0 / temperature), soft_targets)
            loss = teacher_loss + hard_loss * (1.0 - lam) + soft_loss * (lam * temperature ** 2)
            loss.backward()
            optimizer.step()
            history.train_loss.append(float(loss.data))

            student.eval()
            val_acc = self._validation_accuracy(student, propagated, labels, val_idx)
            history.val_accuracy.append(val_acc)
            if np.isnan(val_acc) or val_acc > history.best_val_accuracy:
                history.best_val_accuracy = 0.0 if np.isnan(val_acc) else val_acc
                history.best_epoch = epoch
                best_state = student.state_dict()
                stale = 0
            else:
                stale += 1
            if stale >= config.patience:
                break
        if best_state is not None:
            student.load_state_dict(best_state)
        student.eval()
        return history

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validation_accuracy(
        student: DepthwiseClassifier,
        propagated: Sequence[np.ndarray],
        labels: np.ndarray,
        val_idx: np.ndarray,
    ) -> float:
        if val_idx.size == 0:
            return float("nan")
        logits = student([Tensor(m[val_idx]) for m in propagated])
        return F.accuracy_from_logits(logits, labels[val_idx])
