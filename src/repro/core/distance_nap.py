"""Distance-based Node-Adaptive Propagation (NAP_d, Section III-A1).

NAP_d measures the smoothness of a node's propagated feature *explicitly*: the
l2 distance between ``X^(l)_i`` and the stationary feature ``X^(∞)_i``
(Eq. 8).  Once the distance drops below the global threshold ``T_s`` the node
is considered smooth enough, its propagation stops, and the depth-``l``
classifier predicts it (Eq. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..graph.propagation import smoothness_distance


@dataclass(frozen=True)
class DistanceNAP:
    """Early-exit policy based on the distance to the stationary state.

    Parameters
    ----------
    threshold:
        The global smoothness threshold ``T_s``.  Larger thresholds terminate
        propagation earlier (faster, potentially less accurate); ``0`` never
        terminates early.
    """

    threshold: float

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigurationError(
                f"distance threshold must be non-negative, got {self.threshold}"
            )

    def should_exit(
        self,
        propagated: np.ndarray,
        stationary: np.ndarray,
        depth: int,
    ) -> np.ndarray:
        """Boolean mask of nodes whose propagation terminates at ``depth``.

        Parameters
        ----------
        propagated:
            ``(b, f)`` propagated features ``X^(l)`` of the *remaining* batch
            nodes.
        stationary:
            ``(b, f)`` stationary features ``X^(∞)`` of the same nodes.
        depth:
            Current propagation depth (unused by the distance rule but part
            of the shared policy interface).
        """
        if propagated.shape != stationary.shape:
            raise ShapeError(
                f"propagated {propagated.shape} and stationary {stationary.shape} shapes differ"
            )
        distances = smoothness_distance(propagated, stationary)
        return distances < self.threshold

    def distances(self, propagated: np.ndarray, stationary: np.ndarray) -> np.ndarray:
        """Return the raw per-node distances ``Δ^(l)_i`` (useful for analysis)."""
        return smoothness_distance(propagated, stationary)

    def decision_macs_per_node(self, num_features: int) -> float:
        """MACs of one distance evaluation for a single node (≈ f)."""
        return float(num_features)

    def personalised_depths(
        self,
        propagated_per_depth: list[np.ndarray],
        stationary: np.ndarray,
        *,
        t_min: int = 1,
        t_max: int | None = None,
    ) -> np.ndarray:
        """Offline helper: the personalised depth ``L(v_i, T_s)`` for every node.

        ``propagated_per_depth`` is ``[X^(0), X^(1), ...]`` restricted to the
        nodes of interest.  Depths below ``t_min`` are never selected and
        nodes that never cross the threshold receive ``t_max``.
        """
        max_depth = len(propagated_per_depth) - 1 if t_max is None else t_max
        if max_depth < t_min:
            raise ConfigurationError("t_max must be >= t_min")
        num_nodes = stationary.shape[0]
        depths = np.full(num_nodes, max_depth, dtype=np.int64)
        undecided = np.ones(num_nodes, dtype=bool)
        for depth in range(t_min, max_depth):
            exits = self.should_exit(propagated_per_depth[depth], stationary, depth)
            newly = undecided & exits
            depths[newly] = depth
            undecided &= ~newly
        return depths
