"""NAI core: node-adaptive propagation, Inception Distillation, inference engine."""

from .config import (
    DistillationConfig,
    GateTrainingConfig,
    MonitorConfig,
    NAIConfig,
    ServingConfig,
    ShardConfig,
    TrainingConfig,
)
from .distance_nap import DistanceNAP
from .distillation import DistillationResult, InceptionDistillation
from .gate_nap import GateNAP, GateTrainingHistory
from .inference import (
    BatchEngine,
    InferenceResult,
    MACBreakdown,
    NAIPredictor,
    TimingBreakdown,
)
from .pipeline import NAI, FitReport
from .serialization import load_pipeline, save_pipeline
from .stationary import StationaryState, compute_stationary_state
from .training import (
    TrainingHistory,
    evaluate_classifier,
    predict_logits,
    train_classifier,
)

__all__ = [
    "BatchEngine",
    "DistanceNAP",
    "DistillationConfig",
    "DistillationResult",
    "FitReport",
    "GateNAP",
    "GateTrainingConfig",
    "MonitorConfig",
    "GateTrainingHistory",
    "InceptionDistillation",
    "InferenceResult",
    "MACBreakdown",
    "NAI",
    "NAIConfig",
    "NAIPredictor",
    "ServingConfig",
    "ShardConfig",
    "load_pipeline",
    "StationaryState",
    "TimingBreakdown",
    "TrainingConfig",
    "TrainingHistory",
    "compute_stationary_state",
    "evaluate_classifier",
    "predict_logits",
    "save_pipeline",
    "train_classifier",
]
