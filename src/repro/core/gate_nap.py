"""Gate-based Node-Adaptive Propagation (NAP_g, Section III-A2).

A lightweight gate ``g^(l)`` sits after every propagation step ``l < k``.  It
receives the concatenation of the node's propagated feature ``X^(l)_i`` and
the carried reference ``X̂^(l)_i`` (initialised to the stationary feature
``X^(∞)_i``), projects it with a ``2f × 2`` weight matrix, and emits a one-hot
mask through a Gumbel-softmax (Eq. 11).  A cumulative penalty term ensures
every node is selected by exactly one gate; unselected nodes fall through to
the deepest classifier.  Gates are trained end-to-end against the *frozen*
per-depth classifiers with cross entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn import functional as F
from ..nn.init import xavier_uniform
from ..nn.modules import Parameter
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate
from .config import GateTrainingConfig


@dataclass
class GateTrainingHistory:
    """Loss / accuracy trace of the end-to-end gate training."""

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    selection_counts: list[list[int]] = field(default_factory=list)


class GateNAP:
    """Trainable early-exit gates, one per propagation depth ``1 .. k-1``.

    Parameters
    ----------
    num_features:
        Raw feature dimension ``f`` (gates compare features in input space).
    depth:
        Maximum propagation depth ``k`` of the backbone; ``k - 1`` gates are
        created.
    config:
        Gate-training hyper-parameters (Gumbel temperature, penalty constants,
        optimiser settings).
    rng:
        Randomness source for weight initialisation and Gumbel noise.
    """

    def __init__(
        self,
        num_features: int,
        depth: int,
        *,
        config: GateTrainingConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if depth < 2:
            raise ConfigurationError(
                f"gate-based NAP needs a backbone depth of at least 2, got {depth}"
            )
        if num_features < 1:
            raise ConfigurationError("num_features must be positive")
        self.num_features = num_features
        self.depth = depth
        self.config = config if config is not None else GateTrainingConfig()
        self.rng = np.random.default_rng(rng)
        self.weights: list[Parameter] = [
            Parameter(
                xavier_uniform(2 * num_features, 2, rng=self.rng),
                name=f"gate_{layer}",
            )
            for layer in range(1, depth)
        ]
        self.fitted = False

    # ------------------------------------------------------------------ #
    # Training (Figure 3)
    # ------------------------------------------------------------------ #
    def fit(
        self,
        propagated: Sequence[np.ndarray],
        stationary: np.ndarray,
        classifier_logits: Sequence[np.ndarray],
        labels: np.ndarray,
        *,
        val_propagated: Sequence[np.ndarray] | None = None,
        val_stationary: np.ndarray | None = None,
        val_classifier_logits: Sequence[np.ndarray] | None = None,
        val_labels: np.ndarray | None = None,
    ) -> GateTrainingHistory:
        """Train all gates end-to-end against frozen classifier outputs.

        Parameters
        ----------
        propagated:
            ``[X^(0), ..., X^(k)]`` restricted to the training nodes.
        stationary:
            ``X^(∞)`` for the same nodes, shape ``(b, f)``.
        classifier_logits:
            ``[z^(1), ..., z^(k)]`` — logits of the frozen classifiers
            ``f^(1..k)`` on the same nodes.
        labels:
            Integer labels of the training nodes.
        val_propagated, val_stationary, val_classifier_logits, val_labels:
            Optional validation arrays.  When provided, the gate weights with
            the best *deterministic* adaptive-inference accuracy on the
            validation nodes are kept (the same model-selection protocol the
            classifiers use).
        """
        if len(propagated) < self.depth + 1:
            raise ShapeError(
                f"expected {self.depth + 1} propagated matrices, got {len(propagated)}"
            )
        if len(classifier_logits) != self.depth:
            raise ShapeError(
                f"expected {self.depth} classifier logit matrices, got {len(classifier_logits)}"
            )
        labels = np.asarray(labels, dtype=np.int64)
        stationary = np.asarray(stationary, dtype=np.float64)
        num_nodes = stationary.shape[0]
        if labels.shape[0] != num_nodes:
            raise ShapeError("labels and stationary features disagree on the number of nodes")

        cfg = self.config
        optimizer = Adam([w for w in self.weights], lr=cfg.lr, weight_decay=cfg.weight_decay)
        history = GateTrainingHistory()
        logits_const = [np.asarray(z, dtype=np.float64) for z in classifier_logits]
        use_validation = (
            val_propagated is not None
            and val_stationary is not None
            and val_classifier_logits is not None
            and val_labels is not None
        )
        best_val = -1.0
        best_weights: list[np.ndarray] | None = None

        for _ in range(cfg.epochs):
            optimizer.zero_grad()
            combined, selection_masses = self._forward_soft(propagated, stationary, logits_const)
            loss = F.cross_entropy(combined, labels)
            loss.backward()
            optimizer.step()

            history.loss.append(float(loss.data))
            history.train_accuracy.append(F.accuracy_from_logits(combined, labels))
            counts = [int(round(float(mass.data.sum()))) for mass in selection_masses]
            counts.append(max(num_nodes - sum(counts), 0))
            history.selection_counts.append(counts)

            if use_validation:
                self.fitted = True
                val_acc = self._deterministic_accuracy(
                    val_propagated, np.asarray(val_stationary, dtype=np.float64),
                    [np.asarray(z) for z in val_classifier_logits],
                    np.asarray(val_labels, dtype=np.int64),
                )
                if val_acc > best_val:
                    best_val = val_acc
                    best_weights = [w.data.copy() for w in self.weights]

        if best_weights is not None:
            for weight, snapshot in zip(self.weights, best_weights):
                weight.data = snapshot
        self.fitted = True
        return history

    def _deterministic_accuracy(
        self,
        propagated: Sequence[np.ndarray],
        stationary: np.ndarray,
        classifier_logits: list[np.ndarray],
        labels: np.ndarray,
    ) -> float:
        """Accuracy of deterministic gate-based adaptive inference on held-out nodes."""
        depths = self.personalised_depths(propagated, stationary)
        predictions = np.empty(labels.shape[0], dtype=np.int64)
        for depth in range(1, self.depth + 1):
            mask = depths == depth
            if mask.any():
                predictions[mask] = classifier_logits[depth - 1][mask].argmax(axis=1)
        return float((predictions == labels).mean())

    def _forward_soft(
        self,
        propagated: Sequence[np.ndarray],
        stationary: np.ndarray,
        classifier_logits: list[np.ndarray],
    ) -> tuple[Tensor, list[Tensor]]:
        """Differentiable forward pass through the gate cascade (Eq. 11-12)."""
        cfg = self.config
        num_nodes = stationary.shape[0]
        carried = Tensor(stationary)
        penalty = Tensor(np.zeros((num_nodes, 1)))
        combined: Tensor | None = None
        total_selected: Tensor | None = None
        selection_masses: list[Tensor] = []

        for gate_index, weight in enumerate(self.weights):
            depth = gate_index + 1
            current = Tensor(np.asarray(propagated[depth], dtype=np.float64))
            gate_input = concatenate([current, carried], axis=1)
            preference = F.softmax(gate_input @ weight, axis=1)
            penalised = concatenate(
                [preference[:, 0:1] - penalty, preference[:, 1:2]], axis=1
            )
            mask = F.gumbel_softmax(
                penalised, temperature=cfg.gumbel_temperature, hard=False, rng=self.rng
            )
            select = mask[:, 0:1]
            keep = mask[:, 1:2]
            contribution = select * Tensor(classifier_logits[depth - 1])
            combined = contribution if combined is None else combined + contribution
            total_selected = select if total_selected is None else total_selected + select
            selection_masses.append(select)
            carried = select * current + keep * carried
            penalty = penalty + Tensor(np.full((num_nodes, 1), cfg.penalty_mu)) * (
                (select - 0.5) * cfg.penalty_phi
            ).sigmoid()

        residual = (Tensor(np.ones((num_nodes, 1))) - total_selected).relu()
        combined = combined + residual * Tensor(classifier_logits[self.depth - 1])
        return combined, selection_masses

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def should_exit(
        self,
        propagated: np.ndarray,
        stationary: np.ndarray,
        depth: int,
    ) -> np.ndarray:
        """Deterministic gate decision for the remaining nodes at ``depth``.

        Nodes whose gate prefers the propagated feature (mask ``[1, 0]``) exit
        and are classified by ``f^(depth)``.
        """
        if not self.fitted:
            raise NotFittedError("GateNAP.fit must be called before inference")
        if not 1 <= depth <= self.depth - 1:
            raise ConfigurationError(
                f"gates exist for depths 1..{self.depth - 1}, got {depth}"
            )
        propagated = np.asarray(propagated, dtype=np.float64)
        stationary = np.asarray(stationary, dtype=np.float64)
        if propagated.shape != stationary.shape:
            raise ShapeError("propagated and stationary features must have the same shape")
        gate_input = np.concatenate([propagated, stationary], axis=1)
        scores = gate_input @ self.weights[depth - 1].data
        return scores[:, 0] > scores[:, 1]

    def decision_macs_per_node(self, num_features: int | None = None) -> float:
        """MACs of one gate evaluation for a single node (2f × 2 projection)."""
        f = self.num_features if num_features is None else num_features
        return float(4 * f)

    def personalised_depths(
        self,
        propagated_per_depth: Sequence[np.ndarray],
        stationary: np.ndarray,
        *,
        t_min: int = 1,
        t_max: int | None = None,
    ) -> np.ndarray:
        """Offline helper: personalised depth (Eq. 13) for every node."""
        max_depth = self.depth if t_max is None else t_max
        if max_depth < t_min:
            raise ConfigurationError("t_max must be >= t_min")
        num_nodes = stationary.shape[0]
        depths = np.full(num_nodes, max_depth, dtype=np.int64)
        undecided = np.ones(num_nodes, dtype=bool)
        for depth in range(t_min, min(max_depth, self.depth)):
            if depth > len(propagated_per_depth) - 1:
                break
            exits = self.should_exit(propagated_per_depth[depth], stationary, depth)
            newly = undecided & exits
            depths[newly] = depth
            undecided &= ~newly
        return depths
