"""Configuration dataclasses for training, distillation and NAI inference."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for training one classifier (or the gate stack).

    Mirrors Table III / IV of the paper: learning rate, weight decay and the
    number of optimisation epochs.
    """

    epochs: int = 150
    lr: float = 0.01
    weight_decay: float = 0.0
    patience: int = 30
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {self.weight_decay}")
        if self.patience < 1:
            raise ConfigurationError(f"patience must be positive, got {self.patience}")

    def with_updates(self, **kwargs) -> "TrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DistillationConfig:
    """Hyper-parameters of Inception Distillation (Section III-C).

    Attributes
    ----------
    temperature_single / lambda_single:
        ``T`` and ``λ`` of the Single-Scale Distillation loss (Eq. 17).
    temperature_multi / lambda_multi:
        ``T`` and ``λ`` of the Multi-Scale Distillation loss (Eq. 19).
    ensemble_size:
        ``r`` — how many of the deepest classifiers vote in the ensemble
        teacher (Eq. 18).
    enable_single_scale / enable_multi_scale:
        Ablation switches used by Table VIII.
    """

    temperature_single: float = 1.2
    lambda_single: float = 0.6
    temperature_multi: float = 1.9
    lambda_multi: float = 0.8
    ensemble_size: int = 3
    enable_single_scale: bool = True
    enable_multi_scale: bool = True
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def __post_init__(self) -> None:
        for name in ("temperature_single", "temperature_multi"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("lambda_single", "lambda_multi"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.ensemble_size < 1:
            raise ConfigurationError(f"ensemble_size must be positive, got {self.ensemble_size}")

    def with_updates(self, **kwargs) -> "DistillationConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class NAIConfig:
    """Inference-time hyper-parameters of Algorithm 1.

    Attributes
    ----------
    t_min / t_max:
        Minimum and maximum propagation depth (``1 ≤ T_min ≤ T_max ≤ k``).
    distance_threshold:
        ``T_s`` — the smoothness threshold of the distance-based NAP.  Nodes
        whose distance to the stationary state drops below it are classified
        immediately.  Ignored by the gate-based NAP.
    batch_size:
        Inference batch size (the paper's default is 500).
    dtype:
        Floating dtype of the propagation hot path (``"float64"`` or
        ``"float32"``).  float32 halves the memory traffic of the sparse
        kernels; classifier weights stay float64, so logits are computed in
        double precision either way.
    engine:
        ``"fused"`` (default) runs the zero-copy masked-SpMM engine with
        hop-indexed support pruning; ``"reference"`` keeps the naive
        per-depth submatrix implementation, retained as the equivalence and
        benchmarking baseline.
    """

    t_min: int = 1
    t_max: int = 1
    distance_threshold: float = 0.0
    batch_size: int = 500
    dtype: str = "float64"
    engine: str = "fused"

    def __post_init__(self) -> None:
        if self.t_min < 1:
            raise ConfigurationError(f"t_min must be at least 1, got {self.t_min}")
        if self.t_max < self.t_min:
            raise ConfigurationError(
                f"t_max ({self.t_max}) must be >= t_min ({self.t_min})"
            )
        if self.distance_threshold < 0:
            raise ConfigurationError("distance_threshold must be non-negative")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.dtype not in ("float32", "float64"):
            raise ConfigurationError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.engine not in ("fused", "reference"):
            raise ConfigurationError(
                f"engine must be 'fused' or 'reference', got {self.engine!r}"
            )

    @property
    def np_dtype(self):
        """The numpy dtype object corresponding to :attr:`dtype`."""
        import numpy as np

        return np.dtype(self.dtype)

    def validated_against_depth(self, depth: int) -> "NAIConfig":
        """Check the config against a backbone of maximum depth ``depth``."""
        if self.t_max > depth:
            raise ConfigurationError(
                f"t_max ({self.t_max}) exceeds the backbone propagation depth ({depth})"
            )
        return self

    def with_updates(self, **kwargs) -> "NAIConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class GateTrainingConfig:
    """Hyper-parameters for training the NAP gates (Section III-A2)."""

    epochs: int = 60
    lr: float = 0.01
    weight_decay: float = 0.0
    gumbel_temperature: float = 1.0
    penalty_mu: float = 1000.0
    penalty_phi: float = 1000.0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.gumbel_temperature <= 0:
            raise ConfigurationError("gumbel_temperature must be positive")
        if self.penalty_mu <= 0 or self.penalty_phi <= 0:
            raise ConfigurationError("penalty constants must be positive")

    def with_updates(self, **kwargs) -> "GateTrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
