"""Configuration dataclasses for training, distillation and NAI inference."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for training one classifier (or the gate stack).

    Mirrors Table III / IV of the paper: learning rate, weight decay and the
    number of optimisation epochs.
    """

    epochs: int = 150
    lr: float = 0.01
    weight_decay: float = 0.0
    patience: int = 30
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {self.weight_decay}")
        if self.patience < 1:
            raise ConfigurationError(f"patience must be positive, got {self.patience}")

    def with_updates(self, **kwargs) -> "TrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DistillationConfig:
    """Hyper-parameters of Inception Distillation (Section III-C).

    Attributes
    ----------
    temperature_single / lambda_single:
        ``T`` and ``λ`` of the Single-Scale Distillation loss (Eq. 17).
    temperature_multi / lambda_multi:
        ``T`` and ``λ`` of the Multi-Scale Distillation loss (Eq. 19).
    ensemble_size:
        ``r`` — how many of the deepest classifiers vote in the ensemble
        teacher (Eq. 18).
    enable_single_scale / enable_multi_scale:
        Ablation switches used by Table VIII.
    """

    temperature_single: float = 1.2
    lambda_single: float = 0.6
    temperature_multi: float = 1.9
    lambda_multi: float = 0.8
    ensemble_size: int = 3
    enable_single_scale: bool = True
    enable_multi_scale: bool = True
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def __post_init__(self) -> None:
        for name in ("temperature_single", "temperature_multi"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("lambda_single", "lambda_multi"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.ensemble_size < 1:
            raise ConfigurationError(f"ensemble_size must be positive, got {self.ensemble_size}")

    def with_updates(self, **kwargs) -> "DistillationConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class NAIConfig:
    """Inference-time hyper-parameters of Algorithm 1.

    Attributes
    ----------
    t_min / t_max:
        Minimum and maximum propagation depth (``1 ≤ T_min ≤ T_max ≤ k``).
    distance_threshold:
        ``T_s`` — the smoothness threshold of the distance-based NAP.  Nodes
        whose distance to the stationary state drops below it are classified
        immediately.  Ignored by the gate-based NAP.
    batch_size:
        Inference batch size (the paper's default is 500).
    dtype:
        Floating dtype of the propagation hot path.  The default
        ``"float32"`` halves the memory traffic of the sparse kernels and is
        validated prediction-identical on the synthetic suite and on the
        quantized baseline path; pass ``"float64"`` to restore full
        precision.  Classifier weights stay float64, so logits are computed
        in double precision either way.
    engine:
        ``"fused"`` (default) runs the zero-copy masked-SpMM engine with
        hop-indexed support pruning; ``"reference"`` keeps the naive
        per-depth submatrix implementation, retained as the equivalence and
        benchmarking baseline.
    run_dispatch_threshold:
        Run-count crossover of the fused engine's masked SpMM: row masks
        with at most this many contiguous runs use zero-copy per-run kernel
        dispatch, more fragmented masks compact their rows first
        (:func:`repro.graph.kernels.auto_masked_spmm`).  The best value
        depends on nnz-per-run and feature width; ``benchmarks/
        bench_serving.py`` can sweep it.
    """

    t_min: int = 1
    t_max: int = 1
    distance_threshold: float = 0.0
    batch_size: int = 500
    dtype: str = "float32"
    engine: str = "fused"
    run_dispatch_threshold: int = 8

    def __post_init__(self) -> None:
        if self.t_min < 1:
            raise ConfigurationError(f"t_min must be at least 1, got {self.t_min}")
        if self.t_max < self.t_min:
            raise ConfigurationError(
                f"t_max ({self.t_max}) must be >= t_min ({self.t_min})"
            )
        if self.distance_threshold < 0:
            raise ConfigurationError("distance_threshold must be non-negative")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.dtype not in ("float32", "float64"):
            raise ConfigurationError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.engine not in ("fused", "reference"):
            raise ConfigurationError(
                f"engine must be 'fused' or 'reference', got {self.engine!r}"
            )
        if self.run_dispatch_threshold < 0:
            raise ConfigurationError(
                f"run_dispatch_threshold must be non-negative, got "
                f"{self.run_dispatch_threshold}"
            )

    @property
    def np_dtype(self):
        """The numpy dtype object corresponding to :attr:`dtype`."""
        import numpy as np

        return np.dtype(self.dtype)

    def validated_against_depth(self, depth: int) -> "NAIConfig":
        """Check the config against a backbone of maximum depth ``depth``."""
        if self.t_max > depth:
            raise ConfigurationError(
                f"t_max ({self.t_max}) exceeds the backbone propagation depth ({depth})"
            )
        return self

    def with_updates(self, **kwargs) -> "NAIConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the online serving subsystem (:mod:`repro.serving`).

    Attributes
    ----------
    num_workers:
        Size of the inference worker pool.  Each worker owns a private
        :class:`~repro.core.inference.BatchEngine` (its own double buffers
        and raw CSR state), so independent micro-batches run concurrently.
    backend:
        ``"thread"`` (default — scipy's compiled SpMM kernels run outside
        the interpreter lock) or ``"process"`` (fork-based pool for fully
        GIL-free execution; supporting-subgraph cache reuse is disabled
        because shipping CSR arrays across the process boundary costs more
        than rebuilding them).
    max_batch_size:
        Node budget of one micro-batch: the dynamic batcher coalesces queued
        requests until adding the next one would exceed this many nodes.  A
        single request larger than the budget still forms its own batch.
    max_wait_ms:
        Latency budget of the batcher: once the oldest queued request has
        waited this long, the micro-batch is dispatched regardless of fill.
        ``0`` dispatches whatever is queued immediately (latency-first).
    batch_policy:
        Which :class:`~repro.serving.BatchController` steers the batcher's
        limits.  ``"static"`` (default) keeps ``max_batch_size`` /
        ``max_wait_ms`` fixed — the pre-controller behavior.
        ``"queue_pressure"`` widens both toward the ceilings below as queue
        depth and request age grow and shrinks them back when the queue
        drains (two-watermark hysteresis).  ``"marginal_latency"`` fits an
        online per-batch cost model and picks the widest batch whose
        estimated latency stays under ``latency_slo_ms``.  Policies change
        batching only — served predictions, exit depths and per-batch MAC
        accounting semantics are policy-independent.
    batch_size_ceiling:
        Upper bound the adaptive policies may widen ``max_batch_size`` to.
        ``0`` (default) means "same as ``max_batch_size``" — no widening.
    wait_ms_ceiling:
        Upper bound the adaptive policies may stretch ``max_wait_ms`` to.
        ``0`` (default) means "same as ``max_wait_ms``".
    pressure_widen_depth / pressure_shrink_depth:
        Queue-depth watermarks of the ``"queue_pressure"`` policy: at or
        above ``pressure_widen_depth`` coalescable requests it widens one
        level, at or below ``pressure_shrink_depth`` it shrinks one level,
        and the band in between holds — the hysteresis gap.
    pressure_levels:
        Number of widening steps between the base limits and the ceilings.
    pressure_hold_decisions:
        Decisions to hold the level after any change (cooldown), so one
        noisy depth sample cannot flip the level straight back.
    latency_slo_ms:
        Per-request latency target of the ``"marginal_latency"`` policy
        (must be positive when that policy is selected; ignored otherwise).
    queue_capacity:
        Bound of the request queue, counted in requests.
    overflow_policy:
        What happens when a request arrives at a full queue: ``"block"``
        (default) makes the submitter wait, ``"reject"`` raises
        :class:`~repro.exceptions.BackpressureError` at the submitter, and
        ``"shed_oldest"`` admits the new request by failing the oldest
        queued one with :class:`~repro.exceptions.BackpressureError`.
    cache_capacity:
        Number of supporting-subgraph bundles the LRU
        :class:`~repro.serving.SubgraphCache` retains (``0`` disables
        caching).  Streaming workloads that replay recurring batches skip
        sampling entirely on a hit.  Keys are canonical (sorted node ids +
        depth), so permuted repeats of the same node-set hit too.
    result_cache_capacity:
        Opt-in result-level LRU (:class:`~repro.serving.ResultCache`;
        default ``0`` = disabled): micro-batches whose canonical node-set
        was served before are answered from the recorded result without
        touching a worker.  Replayed work is accounted separately from
        computed work in :class:`~repro.serving.ServingStatsSnapshot`
        (``macs`` vs ``replayed_macs``), keeping the computed-MAC numbers
        honest.
    latency_sample_cap:
        Maximum number of per-request latency samples retained for the
        percentile statistics (oldest samples are dropped first).
    prefetch_depth:
        Number of speculative support fetches the asynchronous prefetch
        pipeline (:class:`~repro.serving.prefetch.PrefetchPipeline`) may
        have outstanding.  ``0`` (default) disables prefetch — the
        dispatcher builds cache-missed bundles inline, serializing
        transport fetch with compute.  Positive values hand misses to that
        many background fetcher threads so batch N+1's cross-shard fetch
        rounds overlap batch N's compute; served results stay bit-identical
        (bundles are canonical-key interchangeable and sampling executes no
        MACs).  Requires the supporting-subgraph cache, i.e. the
        ``"thread"`` backend, the fused engine and ``cache_capacity > 0``.
    wave_width:
        Maximum number of ready micro-batches the dispatcher may fuse into
        one cross-request **wave** (:mod:`repro.serving.wave`).  ``1``
        (default) keeps the pre-wave dispatch path byte-for-byte.  Values
        above 1 make the dispatcher drain up to that many already-coalesced
        batches, union their node sets, run a single propagation sweep over
        the union support and scatter per-request results back —
        bit-identical to isolated execution, with shared propagation MACs
        attributed pro-rata to the member batches.  Requires the
        ``"thread"`` backend and the fused engine, and is mutually
        exclusive with ``prefetch_depth > 0`` (waves subsume the prefetch
        pipeline's miss handling).
    cache_subset_lookups:
        When ``True``, a :class:`~repro.serving.SubgraphCache` miss on a
        wave's union key falls back to scanning for a cached **superset**
        bundle and slicing the requested support out of it (bit-identical
        to a fresh build).  Subset hits refresh recency through the
        ``peek()`` path and are counted separately from exact hits, so the
        serving hit/miss ledger stays torn-free.  Only consulted by the
        wave dispatcher; the default ``False`` keeps lookup costs O(1).
    """

    num_workers: int = 4
    backend: str = "thread"
    max_batch_size: int = 256
    max_wait_ms: float = 2.0
    batch_policy: str = "static"
    batch_size_ceiling: int = 0
    wait_ms_ceiling: float = 0.0
    pressure_widen_depth: int = 8
    pressure_shrink_depth: int = 2
    pressure_levels: int = 4
    pressure_hold_decisions: int = 2
    latency_slo_ms: float = 0.0
    queue_capacity: int = 1024
    overflow_policy: str = "block"
    cache_capacity: int = 64
    result_cache_capacity: int = 0
    latency_sample_cap: int = 100_000
    prefetch_depth: int = 0
    wave_width: int = 1
    cache_subset_lookups: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )
        if self.batch_policy not in ("static", "queue_pressure", "marginal_latency"):
            raise ConfigurationError(
                "batch_policy must be 'static', 'queue_pressure' or "
                f"'marginal_latency', got {self.batch_policy!r}"
            )
        if self.batch_size_ceiling and self.batch_size_ceiling < self.max_batch_size:
            raise ConfigurationError(
                f"batch_size_ceiling ({self.batch_size_ceiling}) must be 0 "
                f"(= max_batch_size) or >= max_batch_size ({self.max_batch_size})"
            )
        if self.wait_ms_ceiling and self.wait_ms_ceiling < self.max_wait_ms:
            raise ConfigurationError(
                f"wait_ms_ceiling ({self.wait_ms_ceiling}) must be 0 "
                f"(= max_wait_ms) or >= max_wait_ms ({self.max_wait_ms})"
            )
        if self.pressure_shrink_depth < 0:
            raise ConfigurationError(
                f"pressure_shrink_depth must be non-negative, got "
                f"{self.pressure_shrink_depth}"
            )
        if self.pressure_widen_depth <= self.pressure_shrink_depth:
            raise ConfigurationError(
                f"pressure_widen_depth ({self.pressure_widen_depth}) must exceed "
                f"pressure_shrink_depth ({self.pressure_shrink_depth})"
            )
        if self.pressure_levels < 1:
            raise ConfigurationError(
                f"pressure_levels must be positive, got {self.pressure_levels}"
            )
        if self.pressure_hold_decisions < 0:
            raise ConfigurationError(
                f"pressure_hold_decisions must be non-negative, got "
                f"{self.pressure_hold_decisions}"
            )
        if self.latency_slo_ms < 0:
            raise ConfigurationError(
                f"latency_slo_ms must be non-negative, got {self.latency_slo_ms}"
            )
        if self.batch_policy == "marginal_latency" and self.latency_slo_ms == 0:
            raise ConfigurationError(
                "the 'marginal_latency' policy needs a positive latency_slo_ms"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.overflow_policy not in ("block", "reject", "shed_oldest"):
            raise ConfigurationError(
                "overflow_policy must be 'block', 'reject' or 'shed_oldest', "
                f"got {self.overflow_policy!r}"
            )
        if self.cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be non-negative, got {self.cache_capacity}"
            )
        if self.result_cache_capacity < 0:
            raise ConfigurationError(
                f"result_cache_capacity must be non-negative, got "
                f"{self.result_cache_capacity}"
            )
        if self.latency_sample_cap < 1:
            raise ConfigurationError(
                f"latency_sample_cap must be positive, got {self.latency_sample_cap}"
            )
        if self.prefetch_depth < 0:
            raise ConfigurationError(
                f"prefetch_depth must be non-negative, got {self.prefetch_depth}"
            )
        if self.wave_width < 1:
            raise ConfigurationError(
                f"wave_width must be positive, got {self.wave_width}"
            )
        if self.wave_width > 1 and self.backend != "thread":
            raise ConfigurationError(
                "wave_width > 1 requires the 'thread' backend (the wave "
                "dispatcher ships pre-built union bundles to the workers)"
            )
        if self.wave_width > 1 and self.prefetch_depth > 0:
            raise ConfigurationError(
                "wave_width > 1 is mutually exclusive with prefetch_depth > 0 "
                "(the wave dispatcher owns miss handling for its members)"
            )

    def with_updates(self, **kwargs) -> "ServingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded graph store (:mod:`repro.shard`).

    Attributes
    ----------
    num_shards:
        Number of shards the node set is partitioned into.  ``1`` keeps the
        whole graph in one shard (useful as the sharded-path oracle).
    strategy:
        ``"hash"`` (default) assigns nodes by a deterministic multiplicative
        hash of the node id — stateless, so any party can compute ownership
        without the partition table.  ``"degree_balanced"`` greedily assigns
        nodes in decreasing-degree order to the shard with the least
        accumulated degree (LPT scheduling), balancing per-shard *edge* load
        on skewed-degree graphs at the cost of an explicit owner table.
    replication_factor:
        Baseline number of read replicas per shard in the plan's replica
        map.  ``1`` (default) means no redundancy — the plan still carries a
        (trivial) replica map, so the replicated transport path works
        uniformly.
    hot_shard_boost:
        Extra replicas granted to *hot* shards on top of
        ``replication_factor``.  Node-adaptive propagation concentrates
        traffic on hub-heavy shards; boosting only those keeps the replica
        budget where the load is.  ``0`` (default) replicates uniformly.
    hot_shard_fraction:
        Fraction of shards (by accumulated degree load, ties to the lower
        shard id) that count as hot.  At least one shard is hot whenever
        ``hot_shard_boost > 0``.
    """

    num_shards: int = 2
    strategy: str = "hash"
    replication_factor: int = 1
    hot_shard_boost: int = 0
    hot_shard_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if self.strategy not in ("hash", "degree_balanced"):
            raise ConfigurationError(
                f"strategy must be 'hash' or 'degree_balanced', got "
                f"{self.strategy!r}"
            )
        if self.replication_factor < 1:
            raise ConfigurationError(
                f"replication_factor must be positive, got "
                f"{self.replication_factor}"
            )
        if self.hot_shard_boost < 0:
            raise ConfigurationError(
                f"hot_shard_boost must be non-negative, got {self.hot_shard_boost}"
            )
        if not 0.0 < self.hot_shard_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_shard_fraction must lie in (0, 1], got "
                f"{self.hot_shard_fraction}"
            )

    def with_updates(self, **kwargs) -> "ShardConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs of the health monitor / SLO / auto-rebalance loop
    (:mod:`repro.obs.monitor`, :mod:`repro.obs.slo`,
    :mod:`repro.obs.rebalance`).

    All durations are measured on the injectable
    :class:`~repro.serving.clock.Clock` — under a
    :class:`~repro.serving.clock.FakeClock` the "1m"/"1h" burn windows are
    virtual-time equivalents, which is what makes the whole control loop
    deterministic in tests.

    Attributes
    ----------
    window_seconds:
        Span of the sliding windows behind every ``*_window`` gauge.
    num_buckets:
        Sub-window buckets per sliding window; expiry granularity is
        ``window_seconds / num_buckets``.
    cadence_seconds:
        Minimum spacing between :meth:`~repro.obs.monitor.HealthMonitor.
        maybe_tick` snapshots.
    sample_cap:
        Retained distribution samples per window (oldest buckets evict
        whole; within a bucket excess samples are dropped and counted).
    latency_slo_threshold_seconds:
        Per-request latency above this counts against the latency SLO's
        error budget.  ``0`` disables the latency SLO.
    latency_slo_budget_fraction:
        Allowed fraction of slow requests (e.g. ``0.05`` ≙ "p95 under
        threshold").
    error_slo_budget_fraction:
        Allowed fraction of failed requests.  ``0`` disables the error SLO.
    fast_burn_window_seconds / slow_burn_window_seconds:
        The two burn-rate windows (Google-SRE multi-window alerting): the
        fast window reacts, the slow window confirms the burn is sustained.
    burn_rate_threshold:
        Both windows must burn the budget faster than this multiple for the
        alert condition to hold.
    alert_for_seconds:
        How long the condition must hold before ``pending`` escalates to
        ``firing``.
    resolve_after_seconds:
        How long the condition must stay clear before ``firing`` resolves
        (hysteresis against flapping).
    min_alert_events:
        Fast-window event floor below which no alert fires (a single slow
        request in an idle window is not an incident).
    cooldown_seconds:
        Minimum spacing between auto-rebalance plan installs.
    rebalance_boost:
        Extra replica rails granted to observed-hot shards in a proposed
        plan.
    rebalance_hot_fraction:
        Fraction of shards (by windowed heat) the advisor treats as hot.
    """

    window_seconds: float = 60.0
    num_buckets: int = 12
    cadence_seconds: float = 5.0
    sample_cap: int = 4096
    latency_slo_threshold_seconds: float = 0.0
    latency_slo_budget_fraction: float = 0.05
    error_slo_budget_fraction: float = 0.0
    fast_burn_window_seconds: float = 60.0
    slow_burn_window_seconds: float = 3600.0
    burn_rate_threshold: float = 1.0
    alert_for_seconds: float = 0.0
    resolve_after_seconds: float = 30.0
    min_alert_events: int = 8
    cooldown_seconds: float = 120.0
    rebalance_boost: int = 1
    rebalance_hot_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.num_buckets < 1:
            raise ConfigurationError(
                f"num_buckets must be positive, got {self.num_buckets}"
            )
        if self.cadence_seconds < 0:
            raise ConfigurationError(
                f"cadence_seconds must be non-negative, got {self.cadence_seconds}"
            )
        if self.sample_cap < 1:
            raise ConfigurationError(
                f"sample_cap must be positive, got {self.sample_cap}"
            )
        if self.latency_slo_threshold_seconds < 0:
            raise ConfigurationError(
                f"latency_slo_threshold_seconds must be non-negative, got "
                f"{self.latency_slo_threshold_seconds}"
            )
        for name in ("latency_slo_budget_fraction", "error_slo_budget_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} must lie in [0, 1), got {value}"
                )
        if self.latency_slo_threshold_seconds > 0 and (
            self.latency_slo_budget_fraction <= 0
        ):
            raise ConfigurationError(
                "a latency SLO needs a positive latency_slo_budget_fraction"
            )
        if self.fast_burn_window_seconds <= 0:
            raise ConfigurationError(
                f"fast_burn_window_seconds must be positive, got "
                f"{self.fast_burn_window_seconds}"
            )
        if self.slow_burn_window_seconds < self.fast_burn_window_seconds:
            raise ConfigurationError(
                "slow_burn_window_seconds must be at least "
                "fast_burn_window_seconds"
            )
        if self.burn_rate_threshold <= 0:
            raise ConfigurationError(
                f"burn_rate_threshold must be positive, got "
                f"{self.burn_rate_threshold}"
            )
        if self.alert_for_seconds < 0:
            raise ConfigurationError(
                f"alert_for_seconds must be non-negative, got "
                f"{self.alert_for_seconds}"
            )
        if self.resolve_after_seconds < 0:
            raise ConfigurationError(
                f"resolve_after_seconds must be non-negative, got "
                f"{self.resolve_after_seconds}"
            )
        if self.min_alert_events < 1:
            raise ConfigurationError(
                f"min_alert_events must be positive, got {self.min_alert_events}"
            )
        if self.cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be non-negative, got "
                f"{self.cooldown_seconds}"
            )
        if self.rebalance_boost < 0:
            raise ConfigurationError(
                f"rebalance_boost must be non-negative, got {self.rebalance_boost}"
            )
        if not 0.0 < self.rebalance_hot_fraction <= 1.0:
            raise ConfigurationError(
                f"rebalance_hot_fraction must lie in (0, 1], got "
                f"{self.rebalance_hot_fraction}"
            )

    def with_updates(self, **kwargs) -> "MonitorConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class GateTrainingConfig:
    """Hyper-parameters for training the NAP gates (Section III-A2)."""

    epochs: int = 60
    lr: float = 0.01
    weight_decay: float = 0.0
    gumbel_temperature: float = 1.0
    penalty_mu: float = 1000.0
    penalty_phi: float = 1000.0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.gumbel_temperature <= 0:
            raise ConfigurationError("gumbel_temperature must be positive")
        if self.penalty_mu <= 0 or self.penalty_phi <= 0:
            raise ConfigurationError("penalty constants must be positive")

    def with_updates(self, **kwargs) -> "GateTrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
