"""Saving and loading trained NAI pipelines.

Deployment of NAI in the paper's target scenarios (fraud detection,
streaming recommendation) separates training from serving: classifiers and
gates are trained offline, then shipped to an inference service.  This module
serialises everything a serving process needs — the backbone configuration,
the per-depth classifier weights and the gate weights — into a single
compressed ``.npz`` archive plus a JSON-encoded configuration header, and
restores a ready-to-deploy :class:`~repro.core.pipeline.NAI` object from it.

Only NumPy and the standard library are involved, so archives are portable
across machines and Python versions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from ..graph.normalization import resolve_gamma
from ..models.registry import make_backbone
from .config import DistillationConfig, GateTrainingConfig, TrainingConfig
from .gate_nap import GateNAP
from .pipeline import NAI

#: Format version stored in every archive; bump when the layout changes.
ARCHIVE_VERSION = 1


def _backbone_config(pipeline: NAI) -> dict:
    backbone = pipeline.backbone
    config = {
        "name": backbone.name.lower(),
        "num_features": backbone.num_features,
        "num_classes": backbone.num_classes,
        "depth": backbone.depth,
        "hidden_dims": list(backbone.hidden_dims),
        "dropout": backbone.dropout,
        "gamma": resolve_gamma(backbone.gamma),
    }
    transform_dim = getattr(backbone, "transform_dim", None)
    if transform_dim is not None:
        config["transform_dim"] = transform_dim
    return config


def save_pipeline(pipeline: NAI, path: str | Path) -> Path:
    """Serialise a fitted pipeline to ``path`` (a ``.npz`` archive).

    Raises
    ------
    NotFittedError
        If :meth:`NAI.fit` has not been called.
    """
    if pipeline.classifiers is None:
        raise NotFittedError("cannot save an unfitted NAI pipeline")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")

    arrays: dict[str, np.ndarray] = {}
    for depth, classifier in enumerate(pipeline.classifiers, start=1):
        for name, values in classifier.state_dict().items():
            arrays[f"classifier/{depth}/{name}"] = values
    if pipeline.gate_nap is not None:
        for index, weight in enumerate(pipeline.gate_nap.weights):
            arrays[f"gate/{index}"] = weight.data
    if pipeline._val_distances is not None:
        arrays["val_distances"] = pipeline._val_distances

    header = {
        "version": ARCHIVE_VERSION,
        "backbone": _backbone_config(pipeline),
        "has_gates": pipeline.gate_nap is not None,
        "gate_config": {
            "epochs": pipeline.gate_config.epochs,
            "lr": pipeline.gate_config.lr,
            "weight_decay": pipeline.gate_config.weight_decay,
            "gumbel_temperature": pipeline.gate_config.gumbel_temperature,
            "penalty_mu": pipeline.gate_config.penalty_mu,
            "penalty_phi": pipeline.gate_config.penalty_phi,
        },
        "distillation_config": {
            "temperature_single": pipeline.distillation_config.temperature_single,
            "lambda_single": pipeline.distillation_config.lambda_single,
            "temperature_multi": pipeline.distillation_config.temperature_multi,
            "lambda_multi": pipeline.distillation_config.lambda_multi,
            "ensemble_size": pipeline.distillation_config.ensemble_size,
            "enable_single_scale": pipeline.distillation_config.enable_single_scale,
            "enable_multi_scale": pipeline.distillation_config.enable_multi_scale,
            "training": {
                "epochs": pipeline.distillation_config.training.epochs,
                "lr": pipeline.distillation_config.training.lr,
                "weight_decay": pipeline.distillation_config.training.weight_decay,
                "patience": pipeline.distillation_config.training.patience,
            },
        },
        "classifier_val_accuracy": (
            {str(k): v for k, v in pipeline.report.classifier_val_accuracy.items()}
            if pipeline.report is not None
            else {}
        ),
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def _parse_header(archive) -> dict:
    if "__header__" not in archive:
        raise ConfigurationError("archive is missing the NAI header; not a pipeline archive")
    raw = bytes(archive["__header__"].tobytes())
    header = json.loads(raw.decode("utf-8"))
    version = header.get("version")
    if version != ARCHIVE_VERSION:
        raise ConfigurationError(
            f"unsupported archive version {version!r}; this build reads version {ARCHIVE_VERSION}"
        )
    return header


def load_pipeline(path: str | Path, *, rng: int | None = 0) -> NAI:
    """Restore a fitted :class:`NAI` pipeline saved by :func:`save_pipeline`.

    The returned pipeline is ready for :meth:`NAI.build_predictor` /
    :meth:`NAI.evaluate`; it does not need (and cannot be) re-fitted to be
    used for inference.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        header = _parse_header(archive)
        backbone_cfg = dict(header["backbone"])
        name = backbone_cfg.pop("name")
        gamma = backbone_cfg.pop("gamma")
        try:
            gamma = float(gamma)
        except (TypeError, ValueError):
            pass
        extra = {}
        if "transform_dim" in backbone_cfg:
            extra["transform_dim"] = backbone_cfg.pop("transform_dim")
        backbone = make_backbone(
            name,
            backbone_cfg["num_features"],
            backbone_cfg["num_classes"],
            backbone_cfg["depth"],
            hidden_dims=tuple(backbone_cfg["hidden_dims"]),
            dropout=backbone_cfg["dropout"],
            gamma=gamma,
            rng=rng,
            **extra,
        )

        distillation_cfg = header["distillation_config"]
        training_cfg = distillation_cfg.pop("training")
        pipeline = NAI(
            backbone,
            distillation_config=DistillationConfig(
                training=TrainingConfig(**training_cfg), **distillation_cfg
            ),
            gate_config=GateTrainingConfig(**header["gate_config"]),
            train_gates=header["has_gates"],
            rng=rng,
        )

        # Rebuild classifiers and load their weights.
        classifiers = backbone.make_all_classifiers()
        for depth, classifier in enumerate(classifiers, start=1):
            prefix = f"classifier/{depth}/"
            state = {
                key[len(prefix):]: archive[key]
                for key in archive.files
                if key.startswith(prefix)
            }
            if not state:
                raise ConfigurationError(f"archive is missing weights for f^({depth})")
            classifier.load_state_dict(state)
            classifier.eval()
        pipeline.classifiers = classifiers

        # Rebuild gates.
        if header["has_gates"]:
            gate = GateNAP(
                backbone.num_features,
                backbone.depth,
                config=pipeline.gate_config,
                rng=rng,
            )
            for index, weight in enumerate(gate.weights):
                key = f"gate/{index}"
                if key not in archive.files:
                    raise ConfigurationError(f"archive is missing gate weights for depth {index + 1}")
                weight.data = archive[key]
            gate.fitted = True
            pipeline.gate_nap = gate

        if "val_distances" in archive.files:
            pipeline._val_distances = archive["val_distances"]

    from .pipeline import FitReport

    report = FitReport()
    report.classifier_val_accuracy = {
        int(k): float(v) for k, v in header.get("classifier_val_accuracy", {}).items()
    }
    pipeline.report = report
    return pipeline
