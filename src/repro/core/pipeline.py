"""High-level NAI pipeline: train once, deploy many inference variants.

:class:`NAI` wires together the building blocks of the framework —
propagation precomputation, Inception Distillation, gate training, stationary
states and the Algorithm-1 inference engine — behind a small fit/predict API:

    >>> from repro import NAI, load_dataset
    >>> from repro.models import SGC
    >>> dataset = load_dataset("flickr-sim", scale=0.25)
    >>> backbone = SGC(dataset.num_features, dataset.num_classes, depth=4, rng=0)
    >>> nai = NAI(backbone, rng=0).fit(dataset)
    >>> result = nai.evaluate(dataset, policy="distance",
    ...                       config=nai.inference_config(t_max=4, distance_threshold=0.5))
    >>> result.accuracy(dataset.labels)  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import NodeClassificationDataset
from ..exceptions import ConfigurationError, NotFittedError
from ..models.base import DepthwiseClassifier, ScalableGNN
from .config import DistillationConfig, GateTrainingConfig, NAIConfig
from .distance_nap import DistanceNAP
from .distillation import DistillationResult, InceptionDistillation
from .gate_nap import GateNAP, GateTrainingHistory
from .inference import InferenceResult, NAIPredictor
from .stationary import compute_stationary_state
from .training import evaluate_classifier, predict_logits


@dataclass
class FitReport:
    """Summary of one :meth:`NAI.fit` call."""

    classifier_val_accuracy: dict[int, float] = field(default_factory=dict)
    gate_history: GateTrainingHistory | None = None
    distillation: DistillationResult | None = None


class NAI:
    """Node-Adaptive Inference framework around a scalable-GNN backbone.

    Parameters
    ----------
    backbone:
        Any :class:`~repro.models.base.ScalableGNN` (SGC, SIGN, S2GC, GAMLP).
    distillation_config:
        Inception-Distillation hyper-parameters; the defaults follow Table III.
    gate_config:
        Gate-training hyper-parameters (only used when gates are trained).
    train_gates:
        Whether to train the gate-based NAP alongside the distance-based one.
    rng:
        Randomness source shared by every training stage.
    """

    def __init__(
        self,
        backbone: ScalableGNN,
        *,
        distillation_config: DistillationConfig | None = None,
        gate_config: GateTrainingConfig | None = None,
        train_gates: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.backbone = backbone
        self.distillation_config = distillation_config or DistillationConfig()
        self.gate_config = gate_config or GateTrainingConfig()
        self.train_gates = train_gates
        self.rng = np.random.default_rng(rng)
        self.classifiers: list[DepthwiseClassifier] | None = None
        self.gate_nap: GateNAP | None = None
        self.report: FitReport | None = None
        self._val_distances: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: NodeClassificationDataset) -> "NAI":
        """Train per-depth classifiers (Inception Distillation) and gates."""
        partition = dataset.partition()
        observed_features = dataset.observed_features()
        observed_labels = dataset.observed_labels()
        train_graph = partition.train_graph

        propagated = self.backbone.precompute(train_graph, observed_features)
        labeled_local = partition.train_local(dataset.split.train_idx)
        val_local = partition.train_local(dataset.split.val_idx)
        distill_local = np.arange(train_graph.num_nodes)

        distiller = InceptionDistillation(
            self.backbone, config=self.distillation_config, rng=self.rng
        )
        distillation = distiller.train(
            propagated, observed_labels, labeled_local, distill_local, val_local
        )
        self.classifiers = distillation.classifiers

        report = FitReport(distillation=distillation)
        for depth, classifier in enumerate(self.classifiers, start=1):
            report.classifier_val_accuracy[depth] = evaluate_classifier(
                classifier, propagated, observed_labels, val_local
            )

        # Stationary state of the training graph, used for gate training and
        # for threshold calibration of the distance-based NAP.
        stationary = compute_stationary_state(
            train_graph, observed_features, gamma=self.backbone.gamma
        )

        if self.train_gates and self.backbone.depth >= 2:
            gate = GateNAP(
                self.backbone.num_features,
                self.backbone.depth,
                config=self.gate_config,
                rng=self.rng,
            )
            classifier_logits = [
                predict_logits(classifier, propagated, labeled_local)
                for classifier in self.classifiers
            ]
            gate_propagated = [matrix[labeled_local] for matrix in propagated]
            val_classifier_logits = [
                predict_logits(classifier, propagated, val_local)
                for classifier in self.classifiers
            ]
            val_propagated = [matrix[val_local] for matrix in propagated]
            report.gate_history = gate.fit(
                gate_propagated,
                stationary.features_for(labeled_local),
                classifier_logits,
                observed_labels[labeled_local],
                val_propagated=val_propagated,
                val_stationary=stationary.features_for(val_local),
                val_classifier_logits=val_classifier_logits,
                val_labels=observed_labels[val_local],
            )
            self.gate_nap = gate

        # Distance statistics on validation nodes, used by threshold helpers.
        val_stationary = stationary.features_for(val_local)
        distances = []
        for depth in range(1, self.backbone.depth + 1):
            diff = propagated[depth][val_local] - val_stationary
            distances.append(np.linalg.norm(diff, axis=1))
        self._val_distances = np.stack(distances, axis=0) if distances else None

        self.report = report
        return self

    def _require_fitted(self) -> None:
        if self.classifiers is None:
            raise NotFittedError("NAI.fit must be called before building predictors")

    # ------------------------------------------------------------------ #
    # Deployment helpers
    # ------------------------------------------------------------------ #
    def inference_config(
        self,
        *,
        t_min: int = 1,
        t_max: int | None = None,
        distance_threshold: float = 0.0,
        batch_size: int = 500,
        dtype: str = "float32",
        engine: str = "fused",
        run_dispatch_threshold: int = 8,
    ) -> NAIConfig:
        """Build an :class:`NAIConfig` validated against the backbone depth.

        ``dtype`` selects the floating precision of the propagation hot path
        (the ``"float32"`` default halves its memory traffic; pass
        ``"float64"`` for full precision); ``engine`` switches between the
        zero-copy ``"fused"`` engine and the naive ``"reference"`` one.
        """
        depth = self.backbone.depth if t_max is None else t_max
        config = NAIConfig(
            t_min=t_min,
            t_max=depth,
            distance_threshold=distance_threshold,
            batch_size=batch_size,
            dtype=dtype,
            engine=engine,
            run_dispatch_threshold=run_dispatch_threshold,
        )
        return config.validated_against_depth(self.backbone.depth)

    def suggest_distance_threshold(self, quantile: float) -> float:
        """Suggest ``T_s`` as a quantile of validation-node distances.

        ``quantile`` close to 1 produces aggressive early exits (speed-first);
        close to 0 keeps most nodes propagating (accuracy-first).
        """
        self._require_fitted()
        if self._val_distances is None or self._val_distances.size == 0:
            raise NotFittedError("no validation distance statistics available")
        if not 0.0 <= quantile <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {quantile}")
        return float(np.quantile(self._val_distances, quantile))

    def build_predictor(
        self,
        *,
        policy: str = "distance",
        config: NAIConfig | None = None,
    ) -> NAIPredictor:
        """Create an (unprepared) :class:`NAIPredictor`.

        Parameters
        ----------
        policy:
            ``"distance"`` (NAP_d), ``"gate"`` (NAP_g) or ``"none"``
            (fixed-depth inference, i.e. "NAI w/o NAP" / the vanilla model).
        config:
            Inference hyper-parameters; defaults to full-depth inference.
        """
        self._require_fitted()
        config = config if config is not None else self.inference_config()
        if policy == "distance":
            nap: DistanceNAP | GateNAP | None = DistanceNAP(config.distance_threshold)
        elif policy == "gate":
            if self.gate_nap is None:
                raise NotFittedError(
                    "gate-based NAP was not trained; construct NAI with train_gates=True"
                )
            nap = self.gate_nap
        elif policy == "none":
            nap = None
        else:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected 'distance', 'gate' or 'none'"
            )
        return NAIPredictor(
            self.classifiers, policy=nap, config=config, gamma=self.backbone.gamma
        )

    def evaluate(
        self,
        dataset: NodeClassificationDataset,
        *,
        policy: str = "distance",
        config: NAIConfig | None = None,
        node_ids: np.ndarray | None = None,
        keep_logits: bool = False,
    ) -> InferenceResult:
        """Run inductive inference on the dataset's unseen test nodes."""
        predictor = self.build_predictor(policy=policy, config=config)
        predictor.prepare(dataset.graph, dataset.features)
        targets = dataset.split.test_idx if node_ids is None else np.asarray(node_ids)
        return predictor.predict(targets, keep_logits=keep_logits)
