"""Reproducible (order- and partition-independent) exact summation.

Floating-point addition is not associative, so the global weighted feature
sum behind the stationary state (Eq. 6) depends on *how* it is summed: a BLAS
matvec over the whole graph and a shard-wise partial-sum-then-reduce disagree
in the last bits, and those bits feed the NAP exit decisions.  A sharded
deployment therefore needs a reduction whose result is **independent of the
partition** — otherwise re-sharding a service would change its predictions.

This module implements an exact fixed-point superaccumulator (in the spirit
of reproducible-BLAS binned summation):

1. every float64 term is decomposed into 32-bit *limbs* on a shared
   power-of-two grid (:class:`SumGrid`) — an exact, vectorised float-to-fixed
   split;
2. limbs are accumulated per column into ``int64`` counters
   (:func:`limb_partials`) — integer addition is associative, so partials
   from any number of shards, in any order, merge exactly
   (:func:`merge_limb_partials`);
3. the merged integer is converted back to the nearest float
   (:func:`reconstruct_sums`) with one correctly-rounded conversion.

Because every step is exact, ``sum(shard partials)`` is *bit-identical* to
the single-process sum for every partition of the terms — the property the
sharded stationary state (:mod:`repro.shard.stationary`) is built on.

The grid must be shared by all participants: it is planned from the global
exponent range of the terms (:func:`plan_sum_grid`), which composes across
shards by a trivial min/max reduce of :func:`exponent_range` results.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exceptions import ShapeError

#: Bits per limb.  With 32-bit limbs an ``int64`` column accumulator holds
#: ``2^31`` terms before overflowing — far beyond any single machine's graph.
LIMB_WIDTH = 32

#: Hard cap on limbs per grid.  80 limbs span 2560 bits, covering the entire
#: float64 range (including denormals) with room to spare; hitting the cap
#: indicates corrupted input, not a legitimate workload.
MAX_LIMBS = 80


@dataclass(frozen=True)
class SumGrid:
    """A shared fixed-point grid: ``num_limbs`` limbs below ``2^top_exponent``.

    Limb ``l`` counts multiples of ``2^(top_exponent - LIMB_WIDTH*(l+1))``;
    together the limbs represent every term exactly, so the grid fully
    determines the accumulator format two shards must agree on.
    """

    top_exponent: int
    num_limbs: int

    @property
    def lowest_exponent(self) -> int:
        """Exponent of the smallest representable bit of the grid."""
        return self.top_exponent - LIMB_WIDTH * self.num_limbs


def exponent_range(block: np.ndarray) -> tuple[int, int] | None:
    """``(max, min)`` binary exponents of the non-zero entries of ``block``.

    Returns ``None`` for an all-zero (or empty) block.  Exponents follow the
    :func:`math.frexp` convention (``|x| < 2^e``), so ranges from different
    shards combine with a plain ``max``/``min`` — the only collective step
    needed to agree on a :class:`SumGrid`.
    """
    block = np.asarray(block, dtype=np.float64)
    if not np.all(np.isfinite(block)):
        raise ShapeError("reproducible summation requires finite inputs")
    magnitudes = np.abs(block[block != 0.0])
    if magnitudes.size == 0:
        return None
    _, exponents = np.frexp(magnitudes)
    return int(exponents.max()), int(exponents.min())


def merge_exponent_ranges(
    ranges: list[tuple[int, int] | None],
) -> tuple[int, int] | None:
    """Combine per-shard :func:`exponent_range` results into the global one."""
    present = [r for r in ranges if r is not None]
    if not present:
        return None
    return max(r[0] for r in present), min(r[1] for r in present)


def plan_sum_grid(exponents: tuple[int, int] | None) -> SumGrid | None:
    """Plan the shared grid covering every bit of terms in ``exponents``.

    The lowest set bit of any float64 with frexp-exponent ``e`` is at least
    ``2^(e - 53)``, so limbs reaching ``min_exponent - 53`` represent every
    term exactly.  ``None`` (no non-zero terms) needs no grid at all.
    """
    if exponents is None:
        return None
    max_exponent, min_exponent = exponents
    # Every float64 is an integer multiple of 2^-1074, so the grid never
    # needs bits below that even when the inputs graze the denormal range.
    span = max_exponent - max(min_exponent - 53, -1074)
    num_limbs = -(-span // LIMB_WIDTH)
    if num_limbs > MAX_LIMBS:
        raise ShapeError(
            f"reproducible sum grid would need {num_limbs} limbs "
            f"(exponent span {span}); input looks corrupted"
        )
    return SumGrid(top_exponent=max_exponent, num_limbs=num_limbs)


def limb_partials(block: np.ndarray, grid: SumGrid) -> np.ndarray:
    """Exact ``int64`` limb sums of the columns of ``block`` on ``grid``.

    Returns an array of shape ``(2, num_limbs, num_columns)`` holding the
    positive (index 0) and negative (index 1) contributions separately.
    Every arithmetic step is exact: dividing by a power of two, flooring a
    quotient below ``2^32`` and subtracting ``q * scale`` from the remainder
    all round to nothing, so the partials are an exact integer encoding of
    the block's column sums.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2:
        raise ShapeError(f"limb_partials expects a 2-D block, got shape {block.shape}")
    out = np.zeros((2, grid.num_limbs, block.shape[1]), dtype=np.int64)
    for sign, part in ((0, np.maximum(block, 0.0)), (1, np.maximum(-block, 0.0))):
        remainder = part.copy()
        for limb in range(grid.num_limbs):
            # Scale via ldexp exponents rather than a materialised 2^e float:
            # the limb unit may lie below the smallest normal number, where a
            # literal scale would underflow to zero.  Up-scaling is always
            # exact (results stay < 2^LIMB_WIDTH); the down-scaled subtrahend
            # is an exact multiple of the limb unit clamped at 2^-1074.
            unit_exponent = grid.top_exponent - LIMB_WIDTH * (limb + 1)
            quotient = np.floor(np.ldexp(remainder, -unit_exponent))
            out[sign, limb] = quotient.astype(np.int64).sum(axis=0)
            remainder -= np.ldexp(quotient, unit_exponent)
        if np.any(remainder != 0.0):
            raise ShapeError(
                "sum grid does not cover every input bit; plan it from the "
                "global exponent_range of all participating blocks"
            )
    return out


def merge_limb_partials(partials: list[np.ndarray]) -> np.ndarray:
    """Sum per-shard limb partials — exact, order-independent integer adds."""
    if not partials:
        raise ShapeError("merge_limb_partials needs at least one partial")
    merged = partials[0].copy()
    for partial in partials[1:]:
        merged += partial
    return merged


def reconstruct_sums(
    partials: np.ndarray, grid: SumGrid, dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """Convert merged limb partials into column sums, rounding exactly once.

    The limbs encode each column's sum as an exact integer multiple of
    ``2^grid.lowest_exponent``; the conversion to float64 goes through
    :class:`fractions.Fraction`, whose ``float()`` is correctly rounded.  The
    optional narrowing cast to ``dtype`` is the same elementwise cast every
    participant performs, so the end result is reproducible bit for bit.
    """
    num_columns = partials.shape[2]
    shift = grid.lowest_exponent
    values = np.empty(num_columns, dtype=np.float64)
    for column in range(num_columns):
        total = 0
        for limb in range(grid.num_limbs):
            limb_shift = LIMB_WIDTH * (grid.num_limbs - 1 - limb)
            total += (
                int(partials[0, limb, column]) - int(partials[1, limb, column])
            ) << limb_shift
        if total == 0:
            values[column] = 0.0
        elif shift >= 0:
            values[column] = float(total << shift)
        else:
            values[column] = float(Fraction(total, 1 << -shift))
    return values.astype(np.dtype(dtype), copy=False)


def exact_columnwise_sum(
    block: np.ndarray, dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """Column sums of ``block``, exact and independent of row order/partition."""
    block = np.asarray(block, dtype=np.float64)
    grid = plan_sum_grid(exponent_range(block))
    if grid is None:
        return np.zeros(block.shape[1], dtype=np.dtype(dtype))
    return reconstruct_sums(limb_partials(block, grid), grid, dtype)


def weighted_feature_products(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    """The float64 product terms ``w_i * x_ij`` of the weighted feature sum.

    Products are computed elementwise in float64 from float64-cast operands,
    so a shard computing the products of its owned rows obtains bit-identical
    terms to a single process computing all of them — the precondition for
    the exact reduction to make the *sums* match too.
    """
    weights = np.asarray(weights, dtype=np.float64)
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or weights.shape[0] != features.shape[0]:
        raise ShapeError(
            f"weights {weights.shape} do not match features {features.shape}"
        )
    return weights[:, None] * features


#: Row-chunk budget (elements) for the streaming weighted sum: bounds the
#: transient float64 product block to ~32 MB regardless of graph size.
_CHUNK_ELEMENTS = 4_000_000


def _chunk_rows(num_rows: int, num_columns: int) -> int:
    return max(1, min(num_rows, _CHUNK_ELEMENTS // max(num_columns, 1)))


def weighted_sum_exponent_range(
    weights: np.ndarray, features: np.ndarray
) -> tuple[int, int] | None:
    """Exponent range of the product terms, streamed over row chunks."""
    step = _chunk_rows(features.shape[0], features.shape[1])
    ranges = [
        exponent_range(
            weighted_feature_products(weights[start:start + step], features[start:start + step])
        )
        for start in range(0, features.shape[0], step)
    ]
    return merge_exponent_ranges(ranges)


def weighted_sum_limb_partials(
    weights: np.ndarray, features: np.ndarray, grid: SumGrid
) -> np.ndarray:
    """Limb partials of the product terms on ``grid``, streamed over chunks.

    Chunking changes only which rows share a vectorised pass; the integer
    partials are summed, so the result is bit-identical to a one-shot
    decomposition (and to any other chunking).
    """
    step = _chunk_rows(features.shape[0], features.shape[1])
    partials: np.ndarray | None = None
    for start in range(0, features.shape[0], step):
        chunk = limb_partials(
            weighted_feature_products(
                weights[start:start + step], features[start:start + step]
            ),
            grid,
        )
        partials = chunk if partials is None else partials + chunk
    assert partials is not None
    return partials


def reproducible_weighted_sum(
    weights: np.ndarray, features: np.ndarray, dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """``Σ_i w_i x_i`` summed exactly — the single-process reduction path.

    Streams over row chunks (two passes: grid planning, then accumulation),
    so peak transient memory is bounded regardless of graph size — the
    product terms are recomputed rather than materialised whole.  Exactness
    makes the chunking invisible: any partition of the rows, including the
    per-shard one in :mod:`repro.shard.stationary`, reduces to the bit-same
    vector.
    """
    if features.ndim != 2 or np.asarray(weights).shape[0] != features.shape[0]:
        raise ShapeError(
            f"weights {np.asarray(weights).shape} do not match features "
            f"{features.shape}"
        )
    grid = plan_sum_grid(weighted_sum_exponent_range(weights, features))
    if grid is None:
        return np.zeros(features.shape[1], dtype=np.dtype(dtype))
    return reconstruct_sums(
        weighted_sum_limb_partials(weights, features, grid), grid, dtype
    )
