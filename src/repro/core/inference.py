"""The NAI online-inference engine (Algorithm 1 of the paper).

For every inference batch of unseen nodes the engine

1. computes the stationary features ``X^(∞)`` of the batch (Eq. 6-7),
2. samples the supporting nodes within ``T_max`` hops,
3. propagates features online, depth by depth, over the supporting subgraph,
4. after each depth ``l ≥ T_min`` asks the NAP policy (distance- or
   gate-based) which of the remaining batch nodes can exit, classifies those
   with ``f^(l)`` and drops them from the batch, and
5. classifies everything still alive at ``T_max`` with ``f^(T_max)``.

Because exited nodes no longer require deeper propagation, the set of
supporting rows that actually need to be recomputed shrinks after every
depth; this is where the paper's speedup comes from, and the engine measures
it both in wall-clock time and in exact multiply-accumulate counts.

The same engine with ``policy=None`` implements the vanilla fixed-depth
inference of the underlying scalable GNN ("NAI w/o NAP" in the ablation) —
set ``t_min = t_max = k`` to recover the original model exactly.

Hot-path architecture (``engine="fused"``, the default)
-------------------------------------------------------
The per-depth cost of Algorithm 1 is dominated by *selecting* and
*recomputing* the supporting rows that can still influence a not-yet-exited
target.  The fused engine removes every per-depth allocation from that loop:

* The local normalized adjacency is extracted **once per batch**
  (:func:`~repro.graph.kernels.extract_submatrix`) and afterwards only its
  raw ``indptr/indices/data`` arrays are touched.
* Propagation runs through :func:`~repro.graph.kernels.masked_row_spmm`,
  which writes ``(Â_local @ X)[rows]`` straight into a preallocated double
  buffer — no per-depth CSR submatrix, no full feature-matrix copy.  Rows
  that exited propagation keep stale values that are provably never read
  again (the needed sets are nested and closed under in-neighbours).
* Needed rows are derived from hop distances instead of a per-depth BFS.
  :func:`~repro.graph.sampling.k_hop_neighborhood` orders local nodes by hop,
  so before the first early exit the rows within ``T_max - depth`` hops form
  a row *prefix* found by one ``searchsorted``.  After an exit event the hop
  distances to the surviving targets are rebuilt once
  (:func:`~repro.graph.kernels.hop_distances`) and subsequent depths go back
  to thresholding — a BFS runs only when the target set actually changes.
* The whole path is dtype-parametric: ``NAIConfig.dtype = "float32"`` halves
  the propagation memory traffic, while classification stays float64.

``engine="reference"`` preserves the naive implementation (fresh BFS and
fancy-indexed submatrix per depth) as an equivalence oracle and benchmark
baseline; ``benchmarks/bench_hot_path.py`` records the speedup between the
two in ``BENCH_hot_path.json``.

Worker-ownable engine state
---------------------------
All per-batch execution lives in :class:`BatchEngine`, which owns the
mutable hot-path state (the grow-only double propagation buffers) while
sharing the prepared read-only deployment state (features, normalized
adjacency, stationary vectors, classifiers).  :class:`NAIPredictor` keeps
one engine for its sequential :meth:`~NAIPredictor.predict` loop;
:mod:`repro.serving` hands each pool worker its own engine via
:meth:`NAIPredictor.make_engine`, so independent micro-batches run
concurrently without sharing scratch memory.  The sampling products of a
batch are packaged as a :class:`~repro.graph.sampling.SupportBundle` that
:meth:`BatchEngine.run_batch` accepts pre-built — the serving layer's
subgraph cache replays bundles across recurring batches, skipping BFS and
feature gathering while every MAC-counted operation still executes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError, NotFittedError
from ..graph.kernels import (
    auto_masked_spmm,
    hop_distances,
    masked_row_spmm,
)
from ..graph.normalization import NormalizationScheme, normalized_adjacency
from ..graph.sampling import (
    SupportBundle,
    batch_iterator,
    build_support_bundle,
)
from ..graph.sparse import CSRGraph
from ..models.base import DepthwiseClassifier
from ..nn.tensor import Tensor
from .config import NAIConfig
from .distance_nap import DistanceNAP
from .gate_nap import GateNAP
from .stationary import StationaryState, compute_stationary_state


@dataclass
class MACBreakdown:
    """Multiply-accumulate counts of one inference run, split by procedure."""

    stationary: float = 0.0
    propagation: float = 0.0
    decision: float = 0.0
    classification: float = 0.0

    @property
    def total(self) -> float:
        return self.stationary + self.propagation + self.decision + self.classification

    @property
    def feature_processing(self) -> float:
        """Propagation plus decision MACs ("FP MACs" in the paper's tables)."""
        return self.propagation + self.decision

    def merged_with(self, other: "MACBreakdown") -> "MACBreakdown":
        return MACBreakdown(
            stationary=self.stationary + other.stationary,
            propagation=self.propagation + other.propagation,
            decision=self.decision + other.decision,
            classification=self.classification + other.classification,
        )


@dataclass
class TimingBreakdown:
    """Wall-clock seconds of one inference run, split by procedure."""

    sampling: float = 0.0
    stationary: float = 0.0
    propagation: float = 0.0
    decision: float = 0.0
    classification: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.sampling
            + self.stationary
            + self.propagation
            + self.decision
            + self.classification
        )

    @property
    def feature_processing(self) -> float:
        """Propagation plus decision time ("FP time" in the paper's tables)."""
        return self.propagation + self.decision

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            sampling=self.sampling + other.sampling,
            stationary=self.stationary + other.stationary,
            propagation=self.propagation + other.propagation,
            decision=self.decision + other.decision,
            classification=self.classification + other.classification,
        )


@dataclass
class InferenceResult:
    """Predictions plus efficiency accounting for a set of test nodes."""

    node_ids: np.ndarray
    predictions: np.ndarray
    depths: np.ndarray
    macs: MACBreakdown
    timings: TimingBreakdown
    max_depth: int
    logits: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    def accuracy(self, labels: np.ndarray) -> float:
        """Accuracy against the global label vector."""
        labels = np.asarray(labels)
        return float((self.predictions == labels[self.node_ids]).mean())

    def depth_distribution(self) -> list[int]:
        """Number of nodes classified at each depth ``1..max_depth`` (Table VI)."""
        counts = np.bincount(self.depths, minlength=self.max_depth + 1)
        return [int(c) for c in counts[1:self.max_depth + 1]]

    def average_depth(self) -> float:
        """The average personalised propagation depth ``q`` of Table I."""
        return float(self.depths.mean()) if self.depths.size else 0.0

    def macs_per_node(self) -> float:
        """Total MACs averaged over the classified nodes."""
        return self.macs.total / max(self.num_nodes, 1)

    def feature_processing_macs_per_node(self) -> float:
        """Feature-processing MACs averaged over the classified nodes."""
        return self.macs.feature_processing / max(self.num_nodes, 1)

    def time_per_node(self) -> float:
        """Total inference seconds averaged over the classified nodes."""
        return self.timings.total / max(self.num_nodes, 1)

    def feature_processing_time_per_node(self) -> float:
        """Feature-processing seconds averaged over the classified nodes."""
        return self.timings.feature_processing / max(self.num_nodes, 1)


class BatchEngine:
    """Executes Algorithm 1 for one batch; owns all mutable per-batch state.

    An engine shares the prepared **read-only** deployment state — the
    feature matrix, the normalized adjacency, the stationary vectors and the
    trained classifiers — with its :class:`NAIPredictor` (and with every
    sibling engine), while owning the **mutable** hot-path state privately:
    the grow-only double propagation buffers that the fused engine writes
    into.  That split is what makes engines worker-ownable: the serving
    layer's pool gives each worker its own engine, so concurrent batches
    never contend on scratch memory, and merging the per-engine
    :class:`TimingBreakdown`/:class:`MACBreakdown` reproduces the sequential
    accounting exactly.

    Engines are *not* thread-safe individually — one engine runs one batch
    at a time.  Use one engine per worker.
    """

    def __init__(
        self,
        classifiers: Sequence[DepthwiseClassifier],
        policy: DistanceNAP | GateNAP | None,
        config: NAIConfig,
        graph: CSRGraph | None,
        features: np.ndarray | None,
        a_hat: sp.csr_matrix | None,
        stationary: StationaryState,
    ) -> None:
        # graph/features/a_hat may be None for engines whose sampling is
        # served elsewhere (repro.shard overrides build_support and runs the
        # fused path, which reads only the stationary state and the bundle).
        if (graph is None or features is None or a_hat is None) and (
            config.engine != "fused"
        ):
            raise ConfigurationError(
                "an engine without the full graph/features/Â requires "
                "engine='fused' (the reference engine resamples from the "
                "in-process graph every depth)"
            )
        self.classifiers = list(classifiers)
        self.policy = policy
        self.config = config
        self.graph = graph
        self.features = features
        self.a_hat = a_hat
        self.stationary = stationary
        for classifier in self.classifiers:
            classifier.eval()
        # Grow-only double buffers reused across batches (fused engine only).
        self._buffer_a: np.ndarray | None = None
        self._buffer_b: np.ndarray | None = None
        #: Batches executed by this engine (used by pool-utilisation stats).
        self.batches_run = 0

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def build_support(self, batch: np.ndarray) -> SupportBundle:
        """Extract the cacheable sampling products for ``batch``.

        The bundle can be handed back to :meth:`run_batch` any number of
        times (by this or any sibling engine of the same predictor) — the
        serving subgraph cache relies on this to amortise sampling across
        recurring batches.
        """
        return build_support_bundle(
            self.graph, self.a_hat, self.features, batch, self.config.t_max
        )

    # ------------------------------------------------------------------ #
    # One batch of Algorithm 1
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: np.ndarray,
        *,
        keep_logits: bool = False,
        bundle: SupportBundle | None = None,
    ) -> InferenceResult:
        """Classify one batch, optionally reusing a pre-built support bundle."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise ConfigurationError("run_batch requires at least one node")
        self.batches_run += 1
        if self.config.engine == "reference":
            if bundle is not None:
                raise ConfigurationError(
                    "the reference engine rebuilds sampling per depth and "
                    "cannot reuse a SupportBundle"
                )
            return self._run_reference(batch, keep_logits=keep_logits)
        return self._run_fused(batch, keep_logits=keep_logits, bundle=bundle)

    def _batch_stationary(
        self, batch: np.ndarray, macs: MACBreakdown, timings: TimingBreakdown
    ) -> np.ndarray:
        """Line 2: stationary state of the batch, from the entire graph."""
        num_features = self.stationary.num_features
        start = time.perf_counter()
        stationary_batch = self.stationary.features_for(batch)
        timings.stationary += time.perf_counter() - start
        # The stationary state knows the deployment's global node count even
        # when the engine itself holds no full graph (sharded engines don't).
        macs.stationary += (
            self.stationary.num_nodes * num_features + batch.shape[0] * num_features
        )
        return stationary_batch

    def _propagation_buffers(self, num_local: int, width: int) -> tuple[np.ndarray, np.ndarray]:
        """Views over the engine-owned double buffers, grown as needed.

        Stale contents from a previous batch are harmless: every row a depth
        step reads was either written by the previous step or (at depth 1)
        comes from the bundle's hop-0 features, never from the raw buffer.
        """
        dtype = self.config.np_dtype
        if (
            self._buffer_a is None
            or self._buffer_a.shape[0] < num_local
            or self._buffer_a.shape[1] != width
            or self._buffer_a.dtype != dtype
        ):
            self._buffer_a = np.empty((num_local, width), dtype=dtype)
            self._buffer_b = np.empty((num_local, width), dtype=dtype)
        assert self._buffer_b is not None
        return self._buffer_a[:num_local], self._buffer_b[:num_local]

    def _run_fused(
        self,
        batch: np.ndarray,
        *,
        keep_logits: bool,
        bundle: SupportBundle | None,
    ) -> InferenceResult:
        """Zero-copy masked-SpMM engine with hop-indexed support pruning."""
        cfg = self.config
        num_features = self.stationary.num_features
        macs = MACBreakdown()
        timings = TimingBreakdown()

        stationary_batch = self._batch_stationary(batch, macs, timings)

        # Line 3: supporting-node sampling up to T_max hops — or a replay of
        # a cached bundle, which skips the BFS, the local-CSR extraction and
        # the hop-0 feature gather (pure data movement; MACs are unaffected).
        if bundle is None:
            bundle = self.build_support(batch)
            timings.sampling += bundle.build_seconds
        support = bundle.support
        indptr, indices, data = bundle.indptr, bundle.indices, bundle.data
        num_local = support.num_supporting_nodes
        target_local = support.target_local

        predictions = np.full(batch.shape[0], -1, dtype=np.int64)
        assigned_depth = np.zeros(batch.shape[0], dtype=np.int64)
        logits_store: dict[int, np.ndarray] = {}
        remaining = np.arange(batch.shape[0])

        # Double propagation buffer: ``current`` always holds fresh values
        # for every row that can still influence a remaining target; rows
        # outside that set go stale but are provably never read again (the
        # needed sets are nested and closed under in-neighbours).  The
        # bundle's hop-0 rows are read-only — depth 1 reads them as the SpMM
        # source, so the buffers never need the feature copy the seed made.
        current, scratch = self._propagation_buffers(num_local, num_features)
        source: np.ndarray = bundle.local_features

        # Per-depth history of the *batch rows* only (needed by SIGN/S2GC/GAMLP).
        target_history: list[np.ndarray] = [bundle.local_features[target_local]]

        # Hop distance of every local row to the nearest *remaining* target.
        # While nobody has exited this is exactly ``support.hops`` — sorted by
        # construction, so the needed rows form a prefix and no BFS runs at
        # all.  After an exit event the distances are rebuilt once and depths
        # in between go back to pure thresholding.
        dist = support.hops
        prefix_mode = True
        dist_stale = False

        for depth in range(1, cfg.t_max + 1):
            # Rows within this many hops of a remaining target can still
            # influence one within the depths left to run.
            hop_budget = cfg.t_max - depth
            if dist_stale:
                dist = hop_distances(
                    indptr, indices, target_local[remaining], num_local, hop_budget
                )
                prefix_mode = False
                dist_stale = False
            start = time.perf_counter()
            # The bundle's local CSR columns are < num_local by construction
            # (extract_local_csr_arrays remaps and drops outside columns), so
            # the per-depth O(nnz) bounds rescan is skipped.
            if prefix_mode:
                runs = np.array([[0, support.prefix_within(hop_budget)]], dtype=np.int64)
                nnz = masked_row_spmm(
                    indptr, indices, data, source, scratch, runs, assume_bounded=True
                )
            else:
                nnz = auto_masked_spmm(
                    indptr, indices, data, source, scratch, dist <= hop_budget,
                    max_zero_copy_runs=cfg.run_dispatch_threshold,
                    assume_bounded=True,
                )
            current, scratch = scratch, current
            source = current
            timings.propagation += time.perf_counter() - start
            macs.propagation += float(nnz) * num_features

            # Fancy indexing already yields a fresh array — no copy needed.
            target_history.append(current[target_local])

            if depth < cfg.t_min:
                continue

            if depth < cfg.t_max and self.policy is not None and remaining.size:
                start = time.perf_counter()
                propagated_remaining = current[target_local[remaining]]
                stationary_remaining = stationary_batch[remaining]
                exits = self.policy.should_exit(propagated_remaining, stationary_remaining, depth)
                timings.decision += time.perf_counter() - start
                macs.decision += self.policy.decision_macs_per_node(num_features) * remaining.size

                exiting = remaining[exits]
                if exiting.size:
                    self._classify(
                        exiting, depth, target_history, predictions, assigned_depth,
                        logits_store, batch, macs, timings, keep_logits,
                    )
                    remaining = remaining[~exits]
                    dist_stale = True
            elif depth == cfg.t_max and remaining.size:
                self._classify(
                    remaining, depth, target_history, predictions, assigned_depth,
                    logits_store, batch, macs, timings, keep_logits,
                )
                remaining = remaining[:0]

            if remaining.size == 0:
                break

        return InferenceResult(
            node_ids=batch,
            predictions=predictions,
            depths=assigned_depth,
            macs=macs,
            timings=timings,
            max_depth=cfg.t_max,
            logits=logits_store,
        )

    def _legacy_support(self, batch: np.ndarray, depth: int) -> tuple[np.ndarray, np.ndarray, sp.csr_matrix]:
        """Seed-faithful supporting-node sampling for the reference engine.

        Replicates the pre-optimisation pipeline exactly — per-hop scipy row
        slicing with ``np.unique`` deduplication, a Python-dict local index,
        and two fancy-indexed ``[ids][:, ids]`` submatrix extractions (the
        local graph adjacency that the seed built and discarded, plus the
        normalized adjacency the loop actually propagates) — so that
        ``benchmarks/bench_hot_path.py`` measures against the true
        pre-change baseline rather than one sped up by the shared sampling
        improvements.
        """
        adjacency = self.graph.adjacency
        visited = np.zeros(self.graph.num_nodes, dtype=bool)
        frontier = np.unique(batch)
        visited[frontier] = True
        order = [frontier]
        for _ in range(depth):
            if frontier.size == 0:
                break
            neighbor_ids = adjacency[frontier].indices
            new = np.unique(neighbor_ids[~visited[neighbor_ids]])
            if new.size == 0:
                frontier = new
                continue
            visited[new] = True
            order.append(new)
            frontier = new
        node_ids = np.concatenate(order)
        local_index = {int(g): i for i, g in enumerate(node_ids)}
        target_local = np.asarray([local_index[int(t)] for t in batch], dtype=np.int64)
        adjacency[node_ids][:, node_ids].tocsr()  # the seed built (and never used) this
        local_adj = self.a_hat[node_ids][:, node_ids].tocsr()
        return node_ids, target_local, local_adj

    def _run_reference(self, batch: np.ndarray, *, keep_logits: bool) -> InferenceResult:
        """The naive engine: per-depth BFS + fancy-indexed CSR submatrices.

        Kept verbatim as the equivalence oracle for the fused engine and as
        the baseline that ``benchmarks/bench_hot_path.py`` measures against.
        """
        cfg = self.config
        num_features = self.features.shape[1]
        macs = MACBreakdown()
        timings = TimingBreakdown()

        stationary_batch = self._batch_stationary(batch, macs, timings)

        # Line 3: supporting-node sampling up to T_max hops (seed-faithful).
        start = time.perf_counter()
        node_ids, target_local, local_adj = self._legacy_support(batch, cfg.t_max)
        timings.sampling += time.perf_counter() - start

        local_features = self.features[node_ids]

        predictions = np.full(batch.shape[0], -1, dtype=np.int64)
        assigned_depth = np.zeros(batch.shape[0], dtype=np.int64)
        logits_store: dict[int, np.ndarray] = {}
        remaining = np.arange(batch.shape[0])

        # Per-depth history of the *batch rows* only (needed by SIGN/S2GC/GAMLP).
        target_history: list[np.ndarray] = [local_features[target_local].copy()]

        current = local_features

        for depth in range(1, cfg.t_max + 1):
            # Which local rows can still influence a remaining target within
            # the depths left to run?  (BFS from the remaining targets.)
            remaining_depths = cfg.t_max - depth
            needed_rows = self._rows_needed(local_adj, target_local[remaining], remaining_depths)

            start = time.perf_counter()
            updated = np.array(current, copy=True)
            rows = np.flatnonzero(needed_rows)
            partial = local_adj[rows] @ current
            updated[rows] = partial
            current = updated
            timings.propagation += time.perf_counter() - start
            macs.propagation += float(local_adj[rows].nnz) * num_features

            target_history.append(current[target_local].copy())

            if depth < cfg.t_min:
                continue

            if depth < cfg.t_max and self.policy is not None and remaining.size:
                start = time.perf_counter()
                propagated_remaining = current[target_local[remaining]]
                stationary_remaining = stationary_batch[remaining]
                exits = self.policy.should_exit(propagated_remaining, stationary_remaining, depth)
                timings.decision += time.perf_counter() - start
                macs.decision += self.policy.decision_macs_per_node(num_features) * remaining.size

                exiting = remaining[exits]
                if exiting.size:
                    self._classify(
                        exiting, depth, target_history, predictions, assigned_depth,
                        logits_store, batch, macs, timings, keep_logits,
                    )
                    remaining = remaining[~exits]
            elif depth == cfg.t_max and remaining.size:
                self._classify(
                    remaining, depth, target_history, predictions, assigned_depth,
                    logits_store, batch, macs, timings, keep_logits,
                )
                remaining = remaining[:0]

            if remaining.size == 0:
                break

        return InferenceResult(
            node_ids=batch,
            predictions=predictions,
            depths=assigned_depth,
            macs=macs,
            timings=timings,
            max_depth=cfg.t_max,
            logits=logits_store,
        )

    @staticmethod
    def _rows_needed(
        local_adj: sp.csr_matrix,
        target_rows: np.ndarray,
        remaining_depth: int,
    ) -> np.ndarray:
        """Local rows within ``remaining_depth`` hops of the remaining targets."""
        num_local = local_adj.shape[0]
        needed = np.zeros(num_local, dtype=bool)
        if target_rows.size == 0:
            return needed
        needed[target_rows] = True
        frontier = np.unique(target_rows)
        for _ in range(remaining_depth):
            if frontier.size == 0:
                break
            neighbors = local_adj[frontier].indices
            new = np.unique(neighbors[~needed[neighbors]])
            needed[new] = True
            frontier = new
        return needed

    def _classify(
        self,
        local_positions: np.ndarray,
        depth: int,
        target_history: list[np.ndarray],
        predictions: np.ndarray,
        assigned_depth: np.ndarray,
        logits_store: dict[int, np.ndarray],
        batch: np.ndarray,
        macs: MACBreakdown,
        timings: TimingBreakdown,
        keep_logits: bool,
    ) -> None:
        """Classify the batch rows ``local_positions`` with ``f^(depth)``."""
        classifier = self.classifiers[depth - 1]
        inputs = [Tensor(history[local_positions]) for history in target_history[: depth + 1]]
        start = time.perf_counter()
        logits = classifier(inputs)
        timings.classification += time.perf_counter() - start
        macs.classification += classifier.classification_macs_per_node() * local_positions.size

        predicted = logits.data.argmax(axis=1)
        predictions[local_positions] = predicted
        assigned_depth[local_positions] = depth
        if keep_logits:
            for row, position in enumerate(local_positions):
                logits_store[int(batch[position])] = logits.data[row].copy()


class NAIPredictor:
    """Node-Adaptive Inference engine for a trained scalable-GNN backbone.

    Parameters
    ----------
    classifiers:
        ``[f^(1), ..., f^(k)]`` trained by
        :class:`~repro.core.distillation.InceptionDistillation` (or plain CE).
    policy:
        :class:`DistanceNAP`, :class:`GateNAP` or ``None`` (no early exit).
    config:
        Inference hyper-parameters (``T_min``, ``T_max``, ``T_s``, batch size).
    gamma:
        Convolution coefficient of Eq. (1); must match the training-time
        propagation.
    """

    def __init__(
        self,
        classifiers: Sequence[DepthwiseClassifier],
        *,
        policy: DistanceNAP | GateNAP | None = None,
        config: NAIConfig | None = None,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    ) -> None:
        if not classifiers:
            raise ConfigurationError("NAIPredictor needs at least one classifier")
        self.classifiers = list(classifiers)
        self.depth = len(self.classifiers)
        self.policy = policy
        self.gamma = gamma
        self.config = (config if config is not None else NAIConfig(t_min=self.depth, t_max=self.depth))
        self.config.validated_against_depth(self.depth)
        self._graph: CSRGraph | None = None
        self._features: np.ndarray | None = None
        self._a_hat: sp.csr_matrix | None = None
        self._stationary: StationaryState | None = None
        self._engine: BatchEngine | None = None

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def prepare(self, graph: CSRGraph, features: np.ndarray) -> "NAIPredictor":
        """Deploy the predictor on the full inference-time graph.

        Builds the (global) normalized adjacency and caches the stationary
        state, all cast to ``config.dtype`` so the inference hot path runs in
        a single precision end to end.  Called once before any number of
        :meth:`predict` calls.
        """
        dtype = self.config.np_dtype
        self._graph = graph
        self._features = np.ascontiguousarray(features, dtype=dtype)
        self._a_hat = normalized_adjacency(graph, gamma=self.gamma).astype(dtype, copy=False)
        self._stationary = compute_stationary_state(
            graph, self._features, gamma=self.gamma, dtype=dtype
        )
        self._engine = self.make_engine()
        return self

    def make_engine(self) -> BatchEngine:
        """Create a fresh :class:`BatchEngine` over the prepared state.

        Every engine shares the read-only deployment state (features,
        normalized adjacency, stationary vectors, classifiers) but owns its
        propagation buffers privately, so one engine per worker thread runs
        concurrent batches without contention.  Requires :meth:`prepare`.
        """
        self._require_prepared()
        assert self._graph is not None and self._features is not None
        assert self._a_hat is not None and self._stationary is not None
        return BatchEngine(
            self.classifiers,
            self.policy,
            self.config,
            self._graph,
            self._features,
            self._a_hat,
            self._stationary,
        )

    @property
    def prepared(self) -> bool:
        """Whether :meth:`prepare` has deployed this predictor on a graph."""
        return self._graph is not None and self._a_hat is not None and self._stationary is not None

    def _require_prepared(self) -> None:
        if not self.prepared:
            raise NotFittedError("call NAIPredictor.prepare(graph, features) before predict")

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict(self, node_ids: np.ndarray, *, keep_logits: bool = False) -> InferenceResult:
        """Classify ``node_ids`` with node-adaptive propagation (Algorithm 1)."""
        self._require_prepared()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size == 0:
            raise ConfigurationError("predict requires at least one node")
        predictions = np.full(node_ids.shape[0], -1, dtype=np.int64)
        depths = np.zeros(node_ids.shape[0], dtype=np.int64)
        logits_store: dict[int, np.ndarray] = {}
        macs = MACBreakdown()
        timings = TimingBreakdown()

        assert self._engine is not None
        # Batches are consecutive slices of ``node_ids``, so the results of
        # batch i land in the matching slice of the output arrays — no
        # per-node Python-dict position lookups.
        offset = 0
        for batch in batch_iterator(node_ids, self.config.batch_size):
            batch_result = self._engine.run_batch(batch, keep_logits=keep_logits)
            macs = macs.merged_with(batch_result.macs)
            timings = timings.merged_with(batch_result.timings)
            predictions[offset:offset + batch.shape[0]] = batch_result.predictions
            depths[offset:offset + batch.shape[0]] = batch_result.depths
            offset += batch.shape[0]
            if keep_logits:
                logits_store.update(batch_result.logits)

        return InferenceResult(
            node_ids=node_ids,
            predictions=predictions,
            depths=depths,
            macs=macs,
            timings=timings,
            max_depth=self.config.t_max,
            logits=logits_store,
        )

