"""Inference-acceleration baselines: GLNN, NOSMOG, TinyGNN and Quantization."""

from .base import DistillationTarget, InferenceBaseline, train_student_mlp
from .glnn import GLNN
from .nosmog import NOSMOG, structural_embeddings
from .quantized import QuantizedInference, quantize_depthwise_classifier
from .tinygnn import PeerAwareStudent, TinyGNN

__all__ = [
    "DistillationTarget",
    "GLNN",
    "InferenceBaseline",
    "NOSMOG",
    "PeerAwareStudent",
    "QuantizedInference",
    "TinyGNN",
    "quantize_depthwise_classifier",
    "structural_embeddings",
    "train_student_mlp",
]
