"""Shared infrastructure for the inference-acceleration baselines.

Every baseline implements the same two-phase protocol as the NAI pipeline —
``fit(dataset, teacher_probs)`` on the training graph followed by
``predict(dataset, node_ids)`` on unseen nodes — and reports its predictions
through the same :class:`~repro.core.inference.InferenceResult` structure so
that the experiment drivers can drop every method into one comparison table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from ..datasets.base import NodeClassificationDataset
from ..exceptions import NotFittedError
from ..nn import functional as F
from ..nn.modules import MLP, Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor


@dataclass(frozen=True)
class DistillationTarget:
    """Soft teacher predictions used to distil a baseline student.

    Attributes
    ----------
    probabilities:
        ``(n_observed, c)`` teacher class probabilities over the observed
        (training-graph) nodes, in training-graph node order.
    temperature:
        Softmax temperature the probabilities were produced with.
    """

    probabilities: np.ndarray
    temperature: float = 1.0


class InferenceBaseline(ABC):
    """Base class for GLNN / NOSMOG / TinyGNN / Quantization baselines."""

    #: short name used in result tables
    name: str = "baseline"

    def __init__(self) -> None:
        self.fitted = False

    @abstractmethod
    def fit(
        self,
        dataset: NodeClassificationDataset,
        teacher: DistillationTarget | None = None,
    ) -> "InferenceBaseline":
        """Train the baseline on the dataset's observed nodes."""

    @abstractmethod
    def predict(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> InferenceResult:
        """Classify (unseen) nodes and account MACs and wall-clock time."""

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise NotFittedError(f"{type(self).__name__}.fit must be called before predict")

    def evaluate(self, dataset: NodeClassificationDataset) -> InferenceResult:
        """Convenience wrapper: predict the dataset's unseen test nodes."""
        return self.predict(dataset, dataset.split.test_idx)


def train_student_mlp(
    student: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    labeled_idx: np.ndarray,
    distill_idx: np.ndarray,
    val_idx: np.ndarray,
    *,
    teacher: DistillationTarget | None,
    epochs: int,
    lr: float,
    weight_decay: float,
    distill_weight: float,
    patience: int = 30,
    noise_scale: float = 0.0,
    rng: np.random.Generator | None = None,
) -> dict[str, list[float]]:
    """Train an MLP student with optional knowledge distillation.

    Used by GLNN, NOSMOG and TinyGNN: the loss is a mixture of hard-label
    cross entropy (on ``labeled_idx``) and soft cross entropy against the
    teacher probabilities (on ``distill_idx``).  ``noise_scale`` adds Gaussian
    feature augmentation at training time (NOSMOG's noise-robust training).
    """
    generator = rng if rng is not None else np.random.default_rng()
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    optimizer = Adam(student.parameters(), lr=lr, weight_decay=weight_decay)
    history: dict[str, list[float]] = {"loss": [], "val_accuracy": []}
    best_val = -1.0
    best_state = None
    stale = 0

    for _ in range(epochs):
        student.train()
        optimizer.zero_grad()
        features = inputs
        if noise_scale > 0:
            features = inputs + generator.normal(0.0, noise_scale, size=inputs.shape)
        labeled_logits = student(Tensor(features[labeled_idx]))
        loss = F.cross_entropy(labeled_logits, labels[labeled_idx]) * (1.0 - distill_weight)
        if teacher is not None and distill_weight > 0:
            distill_logits = student(Tensor(features[distill_idx]))
            temperature = teacher.temperature
            soft = F.soft_cross_entropy(
                distill_logits * (1.0 / temperature), teacher.probabilities[distill_idx]
            )
            loss = loss + soft * (distill_weight * temperature ** 2)
        loss.backward()
        optimizer.step()
        history["loss"].append(float(loss.data))

        student.eval()
        if val_idx.size:
            val_logits = student(Tensor(inputs[val_idx]))
            val_acc = F.accuracy_from_logits(val_logits, labels[val_idx])
        else:
            val_acc = float("nan")
        history["val_accuracy"].append(val_acc)
        if np.isnan(val_acc) or val_acc > best_val:
            best_val = 0.0 if np.isnan(val_acc) else val_acc
            best_state = student.state_dict()
            stale = 0
        else:
            stale += 1
        if stale >= patience:
            break

    if best_state is not None:
        student.load_state_dict(best_state)
    student.eval()
    return history


def single_depth_result(
    node_ids: np.ndarray,
    predictions: np.ndarray,
    *,
    macs: MACBreakdown,
    timings: TimingBreakdown,
    depth: int = 1,
) -> InferenceResult:
    """Wrap baseline predictions in an :class:`InferenceResult` at a fixed depth."""
    node_ids = np.asarray(node_ids, dtype=np.int64)
    return InferenceResult(
        node_ids=node_ids,
        predictions=np.asarray(predictions, dtype=np.int64),
        depths=np.full(node_ids.shape[0], depth, dtype=np.int64),
        macs=macs,
        timings=timings,
        max_depth=depth,
    )


def mlp_student(
    in_features: int,
    num_classes: int,
    hidden_dims: tuple[int, ...],
    dropout: float,
    rng: np.random.Generator,
) -> MLP:
    """Factory for baseline student MLPs (keeps the constructors uniform)."""
    return MLP(in_features, num_classes, hidden_dims, dropout=dropout, rng=rng)
