"""GLNN baseline (Zhang et al., ICLR 2022): graph-less neural network.

GLNN distils a trained GNN teacher into a plain MLP that consumes raw node
features only.  Inference therefore needs no neighbour fetching or feature
propagation at all — it is the fastest baseline in the paper's tables — but
it ignores topology entirely, which hurts accuracy on unseen (inductive)
nodes.  Following the paper's protocol the student MLP may be made wider
than the teacher (``hidden_multiplier``) to partially compensate.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from ..datasets.base import NodeClassificationDataset
from ..models.base import mlp_macs_per_node
from ..nn.tensor import Tensor
from .base import (
    DistillationTarget,
    InferenceBaseline,
    mlp_student,
    single_depth_result,
    train_student_mlp,
)


class GLNN(InferenceBaseline):
    """MLP student distilled from a scalable-GNN teacher.

    Parameters
    ----------
    hidden_dims:
        Hidden layer sizes of the student (before the width multiplier).
    hidden_multiplier:
        Width multiplier applied to every hidden layer (the paper uses 4x /
        8x on the larger datasets).
    distill_weight / temperature:
        Knowledge-distillation mixing weight ``λ`` and softmax temperature.
    """

    name = "GLNN"

    def __init__(
        self,
        *,
        hidden_dims: tuple[int, ...] = (64,),
        hidden_multiplier: int = 1,
        dropout: float = 0.1,
        distill_weight: float = 0.7,
        temperature: float = 1.0,
        epochs: int = 150,
        lr: float = 0.01,
        weight_decay: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.hidden_dims = tuple(int(h * hidden_multiplier) for h in hidden_dims)
        self.dropout = dropout
        self.distill_weight = distill_weight
        self.temperature = temperature
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self.rng = np.random.default_rng(rng)
        self.student = None
        self.history: dict[str, list[float]] | None = None

    def fit(
        self,
        dataset: NodeClassificationDataset,
        teacher: DistillationTarget | None = None,
    ) -> "GLNN":
        partition = dataset.partition()
        features = dataset.observed_features()
        labels = dataset.observed_labels()
        labeled_local = partition.train_local(dataset.split.train_idx)
        val_local = partition.train_local(dataset.split.val_idx)
        distill_local = np.arange(partition.train_graph.num_nodes)

        self.student = mlp_student(
            dataset.num_features, dataset.num_classes, self.hidden_dims, self.dropout, self.rng
        )
        if teacher is not None and teacher.temperature != self.temperature:
            teacher = DistillationTarget(teacher.probabilities, self.temperature)
        self.history = train_student_mlp(
            self.student,
            features,
            labels,
            labeled_local,
            distill_local,
            val_local,
            teacher=teacher,
            epochs=self.epochs,
            lr=self.lr,
            weight_decay=self.weight_decay,
            distill_weight=self.distill_weight if teacher is not None else 0.0,
            rng=self.rng,
        )
        self.fitted = True
        return self

    def predict(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> InferenceResult:
        self._require_fitted()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        macs = MACBreakdown()
        timings = TimingBreakdown()

        start = time.perf_counter()
        logits = self.student(Tensor(dataset.features[node_ids]))
        timings.classification += time.perf_counter() - start
        macs.classification += (
            mlp_macs_per_node(dataset.num_features, self.hidden_dims, dataset.num_classes)
            * node_ids.shape[0]
        )
        predictions = logits.data.argmax(axis=1)
        return single_depth_result(node_ids, predictions, macs=macs, timings=timings, depth=1)
