"""Quantization baseline: INT8 post-training quantization of the classifier.

The paper's Quantization baseline converts the trained model parameters from
FP32 to INT8.  Only the classification stage benefits — feature propagation
still runs in full precision on the raw features — so the MAC count is
unchanged and the acceleration is marginal, at the price of a small accuracy
drop.  This module wraps the trained deepest classifier ``f^(k)`` of any
backbone, replaces its dense layers with INT8 ones and reuses the vanilla
fixed-depth online-inference engine.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from ..core.config import NAIConfig
from ..core.inference import InferenceResult, NAIPredictor
from ..datasets.base import NodeClassificationDataset
from ..exceptions import ConfigurationError
from ..graph.normalization import NormalizationScheme
from ..models.base import DepthwiseClassifier
from ..nn.modules import MLP
from ..nn.quantization import QuantizedMLP
from .base import DistillationTarget, InferenceBaseline


def quantize_depthwise_classifier(
    classifier: DepthwiseClassifier,
    *,
    num_bits: int = 8,
) -> DepthwiseClassifier:
    """Return a copy of ``classifier`` whose MLP blocks run in INT8.

    The copy keeps the original's interface (``forward`` over propagated
    feature lists and ``classification_macs_per_node``); only the dense MLP
    sub-modules (``mlp`` for SGC/S2GC, ``head`` for SIGN/GAMLP) are replaced
    by quantized equivalents.  Auxiliary float components (SIGN's per-depth
    transforms, GAMLP's attention vectors) stay in full precision, matching
    the "quantize the model parameters" recipe of the paper where the bulk of
    the parameters live in the MLP.
    """
    quantized = copy.deepcopy(classifier)
    replaced = False
    for attribute in ("mlp", "head"):
        block = getattr(quantized, attribute, None)
        if isinstance(block, MLP):
            setattr(quantized, attribute, QuantizedMLP(block, num_bits=num_bits))
            replaced = True
    if not replaced:
        raise ConfigurationError(
            f"classifier of type {type(classifier).__name__} has no MLP block to quantize"
        )
    return quantized


class QuantizedInference(InferenceBaseline):
    """Vanilla fixed-depth inference with an INT8-quantized deepest classifier.

    Parameters
    ----------
    classifiers:
        The trained per-depth classifiers ``[f^(1), ..., f^(k)]`` of the
        backbone (only ``f^(k)`` is used — the vanilla model always runs the
        full propagation depth).
    gamma:
        Convolution coefficient matching the backbone's propagation.
    """

    name = "Quantization"

    def __init__(
        self,
        classifiers: Sequence[DepthwiseClassifier],
        *,
        num_bits: int = 8,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
        batch_size: int = 500,
        dtype: str = "float32",
    ) -> None:
        super().__init__()
        if not classifiers:
            raise ConfigurationError("QuantizedInference needs the trained classifiers")
        self.depth = len(classifiers)
        self.gamma = gamma
        self.batch_size = batch_size
        self.num_bits = num_bits
        self.dtype = dtype
        self._quantized = quantize_depthwise_classifier(
            classifiers[self.depth - 1], num_bits=num_bits
        )
        self._predictor: NAIPredictor | None = None

    def fit(
        self,
        dataset: NodeClassificationDataset,
        teacher: DistillationTarget | None = None,
    ) -> "QuantizedInference":
        """Quantization is post-training: "fit" only deploys the predictor."""
        placeholders = [self._quantized] * self.depth
        config = NAIConfig(
            t_min=self.depth, t_max=self.depth, batch_size=self.batch_size,
            dtype=self.dtype,
        )
        self._predictor = NAIPredictor(
            placeholders, policy=None, config=config, gamma=self.gamma
        )
        self._predictor.prepare(dataset.graph, dataset.features)
        self.fitted = True
        return self

    def predict(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> InferenceResult:
        self._require_fitted()
        assert self._predictor is not None
        return self._predictor.predict(np.asarray(node_ids, dtype=np.int64))
