"""NOSMOG baseline (Tian et al., ICLR 2023).

NOSMOG improves GLNN by feeding the student MLP an explicit *position*
encoding of each node in addition to its raw features, and by training with
(adversarial) feature-noise augmentation for robustness.  The original
implementation learns DeepWalk embeddings; the offline reproduction uses a
truncated SVD of the training-graph adjacency, which plays the same role
(a low-dimensional structural embedding) without requiring random-walk
training.  For unseen nodes the position feature is aggregated from the
observed 1-hop neighbours with a single sparse matrix multiplication — the
same inductive path the paper describes (and re-implements with matrix
multiplication for its timing comparison).
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from ..datasets.base import NodeClassificationDataset
from ..exceptions import ConfigurationError
from ..models.base import mlp_macs_per_node
from ..nn.tensor import Tensor
from .base import (
    DistillationTarget,
    InferenceBaseline,
    mlp_student,
    single_depth_result,
    train_student_mlp,
)


def structural_embeddings(
    adjacency: sp.csr_matrix,
    dimension: int,
    *,
    rng: np.random.Generator,
) -> np.ndarray:
    """Truncated-SVD structural (position) embeddings of an adjacency matrix."""
    num_nodes = adjacency.shape[0]
    rank = min(dimension, max(num_nodes - 2, 1))
    if rank < 1:
        return np.zeros((num_nodes, dimension))
    from scipy.sparse.linalg import svds

    seed_vector = rng.normal(size=num_nodes)
    try:
        u, s, _ = svds(adjacency.astype(np.float64), k=rank, v0=seed_vector)
    except Exception:  # pragma: no cover - tiny/degenerate graphs
        dense = adjacency.toarray()
        u, s, _ = np.linalg.svd(dense)
        u, s = u[:, :rank], s[:rank]
    embeddings = u * s
    if embeddings.shape[1] < dimension:
        padding = np.zeros((num_nodes, dimension - embeddings.shape[1]))
        embeddings = np.concatenate([embeddings, padding], axis=1)
    # Standardise each component so the MLP sees position features on the
    # same scale as the (unit-variance) raw attributes.
    scale = embeddings.std(axis=0)
    scale = np.where(scale > 1e-12, scale, 1.0)
    return embeddings / scale


class NOSMOG(InferenceBaseline):
    """MLP student on [raw features || position features] with noisy training."""

    name = "NOSMOG"

    def __init__(
        self,
        *,
        position_dim: int = 16,
        hidden_dims: tuple[int, ...] = (64,),
        dropout: float = 0.1,
        distill_weight: float = 0.7,
        temperature: float = 1.0,
        noise_scale: float = 0.05,
        epochs: int = 150,
        lr: float = 0.01,
        weight_decay: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if position_dim < 1:
            raise ConfigurationError("position_dim must be positive")
        self.position_dim = position_dim
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.distill_weight = distill_weight
        self.temperature = temperature
        self.noise_scale = noise_scale
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self.rng = np.random.default_rng(rng)
        self.student = None
        self.history: dict[str, list[float]] | None = None
        self._observed_positions: np.ndarray | None = None
        self._observed_global_idx: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(
        self,
        dataset: NodeClassificationDataset,
        teacher: DistillationTarget | None = None,
    ) -> "NOSMOG":
        partition = dataset.partition()
        train_graph = partition.train_graph
        features = dataset.observed_features()
        labels = dataset.observed_labels()
        labeled_local = partition.train_local(dataset.split.train_idx)
        val_local = partition.train_local(dataset.split.val_idx)
        distill_local = np.arange(train_graph.num_nodes)

        positions = structural_embeddings(
            train_graph.adjacency, self.position_dim, rng=self.rng
        )
        self._observed_positions = positions
        self._observed_global_idx = dataset.split.observed_idx
        inputs = np.concatenate([features, positions], axis=1)

        self.student = mlp_student(
            inputs.shape[1], dataset.num_classes, self.hidden_dims, self.dropout, self.rng
        )
        if teacher is not None and teacher.temperature != self.temperature:
            teacher = DistillationTarget(teacher.probabilities, self.temperature)
        self.history = train_student_mlp(
            self.student,
            inputs,
            labels,
            labeled_local,
            distill_local,
            val_local,
            teacher=teacher,
            epochs=self.epochs,
            lr=self.lr,
            weight_decay=self.weight_decay,
            distill_weight=self.distill_weight if teacher is not None else 0.0,
            noise_scale=self.noise_scale,
            rng=self.rng,
        )
        self.fitted = True
        return self

    # ------------------------------------------------------------------ #
    def _aggregate_positions(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Inductive position features: mean of observed 1-hop neighbours.

        Returns the aggregated positions plus the number of MACs spent.
        """
        assert self._observed_positions is not None and self._observed_global_idx is not None
        num_nodes = dataset.graph.num_nodes
        scatter = np.zeros((num_nodes, self.position_dim))
        scatter[self._observed_global_idx] = self._observed_positions
        rows = dataset.graph.adjacency[node_ids]
        degrees = np.asarray(rows.sum(axis=1)).ravel()
        degrees = np.where(degrees > 0, degrees, 1.0)
        aggregated = (rows @ scatter) / degrees[:, None]
        macs = float(rows.nnz) * self.position_dim
        return aggregated, macs

    def predict(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> InferenceResult:
        self._require_fitted()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        macs = MACBreakdown()
        timings = TimingBreakdown()

        start = time.perf_counter()
        positions, aggregation_macs = self._aggregate_positions(dataset, node_ids)
        timings.propagation += time.perf_counter() - start
        macs.propagation += aggregation_macs

        inputs = np.concatenate([dataset.features[node_ids], positions], axis=1)
        start = time.perf_counter()
        logits = self.student(Tensor(inputs))
        timings.classification += time.perf_counter() - start
        macs.classification += (
            mlp_macs_per_node(inputs.shape[1], self.hidden_dims, dataset.num_classes)
            * node_ids.shape[0]
        )
        predictions = logits.data.argmax(axis=1)
        return single_depth_result(node_ids, predictions, macs=macs, timings=timings, depth=1)
