"""TinyGNN baseline (Yan et al., KDD 2020).

TinyGNN distils a deep GNN teacher into a *single-layer* GNN student whose
"peer-aware module" (PAM) runs self-attention over the 1-hop neighbourhood to
recover part of the information the missing deeper layers would have
provided.  Inference touches only 1-hop neighbours, but the attention
projections and score computations add substantial extra MACs — on
high-dimensional datasets TinyGNN can cost *more* MACs than the vanilla
model, exactly the effect Table V of the paper highlights.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from ..datasets.base import NodeClassificationDataset
from ..exceptions import ConfigurationError
from ..graph.normalization import NormalizationScheme, normalized_adjacency
from ..graph.sampling import k_hop_neighborhood
from ..models.base import mlp_macs_per_node
from ..nn import functional as F
from ..nn.modules import MLP, Linear, Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate
from .base import DistillationTarget, InferenceBaseline, single_depth_result


class PeerAwareStudent(Module):
    """Single-hop student: attention-weighted neighbour aggregation + MLP head."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        attention_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64,),
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.num_features = num_features
        self.num_classes = num_classes
        self.attention_dim = attention_dim
        self.query = Linear(num_features, attention_dim, rng=generator)
        self.key = Linear(num_features, attention_dim, rng=generator)
        self.head = MLP(
            2 * num_features, num_classes, hidden_dims, dropout=dropout, rng=generator
        )

    def forward(self, features: Tensor, propagated: Tensor, peer_scores: Tensor) -> Tensor:
        """Classify from raw features, 1-hop aggregation and the PAM summary."""
        combined = concatenate([features * peer_scores, propagated], axis=1)
        return self.head(combined)

    def peer_attention(self, features: Tensor, neighbour_mean: Tensor) -> Tensor:
        """Self-attention score between each node and its neighbourhood summary."""
        queries = self.query(features)
        keys = self.key(neighbour_mean)
        scores = (queries * keys).sum(axis=1, keepdims=True) * (
            1.0 / np.sqrt(self.attention_dim)
        )
        return scores.sigmoid()


class TinyGNN(InferenceBaseline):
    """Single-layer peer-aware GNN student distilled from a deep teacher."""

    name = "TinyGNN"

    def __init__(
        self,
        *,
        attention_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64,),
        dropout: float = 0.1,
        distill_weight: float = 0.7,
        temperature: float = 1.0,
        epochs: int = 150,
        lr: float = 0.01,
        weight_decay: float = 0.0,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if attention_dim < 1:
            raise ConfigurationError("attention_dim must be positive")
        self.attention_dim = attention_dim
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.distill_weight = distill_weight
        self.temperature = temperature
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self.gamma = gamma
        self.rng = np.random.default_rng(rng)
        self.student: PeerAwareStudent | None = None
        self.history: dict[str, list[float]] | None = None

    # ------------------------------------------------------------------ #
    def _student_inputs(
        self,
        graph,
        features: np.ndarray,
        node_idx: np.ndarray,
    ) -> tuple[Tensor, Tensor, Tensor, float]:
        """Raw features, 1-hop propagation and PAM scores for ``node_idx``.

        Returns the three student inputs plus the propagation MAC count.
        """
        a_hat = normalized_adjacency(graph, gamma=self.gamma)
        rows = a_hat[node_idx]
        propagated = rows @ features
        macs = float(rows.nnz) * features.shape[1]
        raw = Tensor(features[node_idx])
        neighbour_mean = Tensor(np.asarray(propagated))
        scores = self.student.peer_attention(raw, neighbour_mean)
        return raw, neighbour_mean, scores, macs

    def fit(
        self,
        dataset: NodeClassificationDataset,
        teacher: DistillationTarget | None = None,
    ) -> "TinyGNN":
        partition = dataset.partition()
        train_graph = partition.train_graph
        features = dataset.observed_features()
        labels = dataset.observed_labels()
        labeled_local = partition.train_local(dataset.split.train_idx)
        val_local = partition.train_local(dataset.split.val_idx)
        distill_local = np.arange(train_graph.num_nodes)

        self.student = PeerAwareStudent(
            dataset.num_features,
            dataset.num_classes,
            attention_dim=self.attention_dim,
            hidden_dims=self.hidden_dims,
            dropout=self.dropout,
            rng=self.rng,
        )
        optimizer = Adam(self.student.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        history: dict[str, list[float]] = {"loss": [], "val_accuracy": []}
        best_val, best_state, stale = -1.0, None, 0

        a_hat = normalized_adjacency(train_graph, gamma=self.gamma)
        propagated_all = np.asarray(a_hat @ features)

        for _ in range(self.epochs):
            self.student.train()
            optimizer.zero_grad()
            raw = Tensor(features[labeled_local])
            neigh = Tensor(propagated_all[labeled_local])
            scores = self.student.peer_attention(raw, neigh)
            logits = self.student(raw, neigh, scores)
            loss = F.cross_entropy(logits, labels[labeled_local]) * (1.0 - self.distill_weight)
            if teacher is not None and self.distill_weight > 0:
                raw_d = Tensor(features[distill_local])
                neigh_d = Tensor(propagated_all[distill_local])
                scores_d = self.student.peer_attention(raw_d, neigh_d)
                distill_logits = self.student(raw_d, neigh_d, scores_d)
                soft = F.soft_cross_entropy(
                    distill_logits * (1.0 / self.temperature),
                    teacher.probabilities[distill_local],
                )
                loss = loss + soft * (self.distill_weight * self.temperature ** 2)
            loss.backward()
            optimizer.step()
            history["loss"].append(float(loss.data))

            self.student.eval()
            raw_v = Tensor(features[val_local])
            neigh_v = Tensor(propagated_all[val_local])
            scores_v = self.student.peer_attention(raw_v, neigh_v)
            val_logits = self.student(raw_v, neigh_v, scores_v)
            val_acc = F.accuracy_from_logits(val_logits, labels[val_local])
            history["val_accuracy"].append(val_acc)
            if val_acc > best_val:
                best_val, best_state, stale = val_acc, self.student.state_dict(), 0
            else:
                stale += 1
            if stale >= 30:
                break

        if best_state is not None:
            self.student.load_state_dict(best_state)
        self.student.eval()
        self.history = history
        self.fitted = True
        return self

    # ------------------------------------------------------------------ #
    def predict(
        self,
        dataset: NodeClassificationDataset,
        node_ids: np.ndarray,
    ) -> InferenceResult:
        self._require_fitted()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        macs = MACBreakdown()
        timings = TimingBreakdown()

        # 1-hop supporting nodes (sampling is timed but costs no MACs).
        start = time.perf_counter()
        support = k_hop_neighborhood(dataset.graph, node_ids, 1)
        timings.sampling += time.perf_counter() - start

        start = time.perf_counter()
        raw, neighbour_mean, scores, propagation_macs = self._student_inputs(
            dataset.graph, dataset.features, node_ids
        )
        timings.propagation += time.perf_counter() - start
        macs.propagation += propagation_macs
        # Peer-aware attention: two projections per supporting node plus the
        # score inner product per target node.
        macs.decision += (
            2.0 * self.student.num_features * self.attention_dim * support.num_supporting_nodes
            + self.attention_dim * node_ids.shape[0]
        )

        start = time.perf_counter()
        logits = self.student(raw, neighbour_mean, scores)
        timings.classification += time.perf_counter() - start
        macs.classification += (
            mlp_macs_per_node(
                2 * dataset.num_features, self.hidden_dims, dataset.num_classes
            )
            * node_ids.shape[0]
        )
        predictions = logits.data.argmax(axis=1)
        return single_depth_result(node_ids, predictions, macs=macs, timings=timings, depth=1)
