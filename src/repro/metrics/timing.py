"""Small timing utilities used by the experiment drivers and benches."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> watch = Stopwatch()
    >>> with watch.lap("propagation"):
    ...     _ = sum(range(1000))
    >>> watch.total() >= 0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and add the elapsed seconds to lap ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return float(sum(self.laps.values()))

    def reset(self) -> None:
        """Clear every lap."""
        self.laps.clear()


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencySummary":
        """Inverse of :meth:`as_dict` — rebuilds the summary from a plain dict.

        Round-trips through JSON: ``count`` is restored as an ``int`` even
        though ``as_dict`` emits it as a float alongside the other fields.
        """
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            p50=float(payload["p50"]),
            p95=float(payload["p95"]),
            p99=float(payload["p99"]),
            max=float(payload["max"]),
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Same summary in different units (e.g. ``scaled(1e3)`` for ms)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            max=self.max * factor,
        )


#: Below this many samples the pure-Python percentile path wins: numpy's
#: fixed per-call overhead (~100µs) dwarfs a small sort, and the monitor
#: ticks summaries at production cadence — the summary must stay ~free.
_NUMPY_CUTOVER = 1024


def _percentile_sorted(ordered: list[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of pre-sorted ``ordered``.

    Matches ``numpy.percentile``'s default method bit-for-bit, including
    the lerp that anchors at the nearer endpoint for precision.
    """
    position = (q / 100.0) * (len(ordered) - 1)
    lower = int(position)
    t = position - lower
    if t <= 0.0 or lower + 1 == len(ordered):
        return ordered[lower]
    a = ordered[lower]
    b = ordered[lower + 1]
    if t >= 0.5:
        return b - (b - a) * (1.0 - t)
    return a + (b - a) * t


def latency_summary(samples) -> LatencySummary:
    """p50/p95/p99 latency summary of ``samples`` (any float iterable, seconds).

    Degenerate inputs have explicit, documented semantics:

    * **Empty** — an all-zero summary (``count=0``) rather than an error, so
      callers can snapshot statistics before the first request completes.
      Zeros here mean "no data", not "zero latency"; check ``count`` before
      interpreting the percentiles.
    * **Single sample** — every percentile, the mean and the max all equal
      that one sample exactly (no interpolation artefacts).
    """
    values = [float(v) for v in samples]
    if not values:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
    if len(values) == 1:
        only = values[0]
        return LatencySummary(count=1, mean=only, p50=only, p95=only, p99=only, max=only)
    if len(values) >= _NUMPY_CUTOVER:
        import numpy as np

        array = np.asarray(values, dtype=np.float64)
        p50, p95, p99 = np.percentile(array, [50.0, 95.0, 99.0])
        return LatencySummary(
            count=int(array.size),
            mean=float(array.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(array.max()),
        )
    values.sort()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=_percentile_sorted(values, 50.0),
        p95=_percentile_sorted(values, 95.0),
        p99=_percentile_sorted(values, 99.0),
        max=values[-1],
    )


def time_callable(fn, *args, repeats: int = 1, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times and return ``(last_result, best_seconds)``."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best
