"""Small timing utilities used by the experiment drivers and benches."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> watch = Stopwatch()
    >>> with watch.lap("propagation"):
    ...     _ = sum(range(1000))
    >>> watch.total() >= 0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and add the elapsed seconds to lap ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return float(sum(self.laps.values()))

    def reset(self) -> None:
        """Clear every lap."""
        self.laps.clear()


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencySummary":
        """Inverse of :meth:`as_dict` — rebuilds the summary from a plain dict.

        Round-trips through JSON: ``count`` is restored as an ``int`` even
        though ``as_dict`` emits it as a float alongside the other fields.
        """
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            p50=float(payload["p50"]),
            p95=float(payload["p95"]),
            p99=float(payload["p99"]),
            max=float(payload["max"]),
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Same summary in different units (e.g. ``scaled(1e3)`` for ms)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            max=self.max * factor,
        )


def latency_summary(samples) -> LatencySummary:
    """p50/p95/p99 latency summary of ``samples`` (any float iterable, seconds).

    Degenerate inputs have explicit, documented semantics:

    * **Empty** — an all-zero summary (``count=0``) rather than an error, so
      callers can snapshot statistics before the first request completes.
      Zeros here mean "no data", not "zero latency"; check ``count`` before
      interpreting the percentiles.
    * **Single sample** — every percentile, the mean and the max all equal
      that one sample exactly (no interpolation artefacts).
    """
    import numpy as np

    values = np.asarray(list(samples) if not hasattr(samples, "__len__") else samples,
                        dtype=np.float64)
    if values.size == 0:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
    if values.size == 1:
        only = float(values[0])
        return LatencySummary(count=1, mean=only, p50=only, p95=only, p99=only, max=only)
    p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
    return LatencySummary(
        count=int(values.size),
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        max=float(values.max()),
    )


def time_callable(fn, *args, repeats: int = 1, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times and return ``(last_result, best_seconds)``."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best
