"""Small timing utilities used by the experiment drivers and benches."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> watch = Stopwatch()
    >>> with watch.lap("propagation"):
    ...     _ = sum(range(1000))
    >>> watch.total() >= 0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and add the elapsed seconds to lap ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return float(sum(self.laps.values()))

    def reset(self) -> None:
        """Clear every lap."""
        self.laps.clear()


def time_callable(fn, *args, repeats: int = 1, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times and return ``(last_result, best_seconds)``."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best
