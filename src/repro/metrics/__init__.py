"""Metrics: MAC accounting (Table I), timing helpers and result-table formatting."""

from .macs import (
    ComplexityInputs,
    nai_macs,
    supported_backbones,
    theoretical_speedup,
    vanilla_macs,
)
from .report import (
    MethodResult,
    format_table,
    method_result_from_inference,
    summarize_accuracy,
)
from .timing import LatencySummary, Stopwatch, latency_summary, time_callable

__all__ = [
    "ComplexityInputs",
    "LatencySummary",
    "MethodResult",
    "Stopwatch",
    "format_table",
    "latency_summary",
    "method_result_from_inference",
    "nai_macs",
    "summarize_accuracy",
    "supported_backbones",
    "theoretical_speedup",
    "time_callable",
    "vanilla_macs",
]
