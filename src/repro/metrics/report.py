"""Result-row containers and plain-text table formatting.

The experiment drivers produce :class:`MethodResult` rows (one per method per
dataset); :func:`format_table` renders them in the same column layout the
paper uses (ACC / #mMACs / #FP mMACs / Time / FP Time plus acceleration
ratios), so benchmark output can be compared side-by-side with the published
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.inference import InferenceResult


@dataclass(frozen=True)
class MethodResult:
    """One row of an inference-comparison table.

    MAC counts are reported in *mega*-MACs per inferred node and times in
    milliseconds per node, matching the units of the paper's tables.
    """

    method: str
    dataset: str
    accuracy: float
    macs_per_node: float
    fp_macs_per_node: float
    time_ms_per_node: float
    fp_time_ms_per_node: float
    depth_distribution: tuple[int, ...] = ()
    average_depth: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def mmacs_per_node(self) -> float:
        return self.macs_per_node / 1e6

    @property
    def fp_mmacs_per_node(self) -> float:
        return self.fp_macs_per_node / 1e6

    def speedup_over(self, reference: "MethodResult") -> dict[str, float]:
        """Acceleration ratios of this row relative to ``reference`` (the vanilla model)."""
        def ratio(base: float, ours: float) -> float:
            return float(base / ours) if ours > 0 else float("inf")

        return {
            "macs": ratio(reference.macs_per_node, self.macs_per_node),
            "fp_macs": ratio(reference.fp_macs_per_node, self.fp_macs_per_node),
            "time": ratio(reference.time_ms_per_node, self.time_ms_per_node),
            "fp_time": ratio(reference.fp_time_ms_per_node, self.fp_time_ms_per_node),
        }


def method_result_from_inference(
    method: str,
    dataset: str,
    result: InferenceResult,
    labels: np.ndarray,
    **extras: float,
) -> MethodResult:
    """Convert an :class:`InferenceResult` into a table row."""
    return MethodResult(
        method=method,
        dataset=dataset,
        accuracy=result.accuracy(labels),
        macs_per_node=result.macs_per_node(),
        fp_macs_per_node=result.feature_processing_macs_per_node(),
        time_ms_per_node=result.time_per_node() * 1e3,
        fp_time_ms_per_node=result.feature_processing_time_per_node() * 1e3,
        depth_distribution=tuple(result.depth_distribution()),
        average_depth=result.average_depth(),
        extras=dict(extras),
    )


def format_table(
    rows: Sequence[MethodResult],
    *,
    reference_method: str | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table (one dataset per block).

    When ``reference_method`` is given, acceleration ratios relative to that
    method are appended in brackets, mirroring the paper's presentation.
    """
    if not rows:
        return "(no results)"
    lines: list[str] = []
    if title:
        lines.append(title)
    datasets = sorted({row.dataset for row in rows})
    header = (
        f"{'method':<14} {'ACC%':>7} {'kMACs/n':>10} {'FP kMACs/n':>11} "
        f"{'ms/node':>9} {'FP ms/n':>9}  depth distribution"
    )
    for dataset in datasets:
        block = [row for row in rows if row.dataset == dataset]
        reference = None
        if reference_method is not None:
            matches = [row for row in block if row.method == reference_method]
            reference = matches[0] if matches else None
        lines.append(f"-- dataset: {dataset}")
        lines.append(header)
        for row in block:
            ratios = ""
            if reference is not None and row.method != reference_method:
                speed = row.speedup_over(reference)
                ratios = f"  (MACs x{speed['macs']:.1f}, time x{speed['time']:.1f})"
            distribution = list(row.depth_distribution)
            lines.append(
                f"{row.method:<14} {row.accuracy * 100:>7.2f} "
                f"{row.macs_per_node / 1e3:>10.1f} {row.fp_macs_per_node / 1e3:>11.1f} "
                f"{row.time_ms_per_node:>9.3f} {row.fp_time_ms_per_node:>9.3f}  "
                f"{distribution}{ratios}"
            )
    return "\n".join(lines)


def summarize_accuracy(rows: Iterable[MethodResult]) -> dict[str, float]:
    """Mapping ``method -> accuracy`` (averaged when a method appears several times)."""
    buckets: dict[str, list[float]] = {}
    for row in rows:
        buckets.setdefault(row.method, []).append(row.accuracy)
    return {method: float(np.mean(values)) for method, values in buckets.items()}
