"""Analytic MAC formulas (Table I of the paper) plus helpers around measured counts.

Table I gives the inductive-inference complexity of the four backbones with
and without NAI, in terms of

* ``n`` — number of nodes touched (supporting nodes),
* ``m`` — number of edges among them,
* ``f`` — feature dimension,
* ``k`` — propagation depth,
* ``P`` — number of classifier layers,
* ``q`` — the *average personalised depth* once NAI is enabled.

These formulas are used by the Table-I bench to print the analytic
complexities next to the measured counts coming out of the inference engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

_BACKBONES = ("SGC", "SIGN", "S2GC", "GAMLP")


@dataclass(frozen=True)
class ComplexityInputs:
    """Workload parameters that enter the Table-I formulas."""

    num_nodes: int
    num_edges: int
    num_features: int
    depth: int
    classifier_layers: int = 1
    average_depth: float | None = None

    def __post_init__(self) -> None:
        if min(self.num_nodes, self.num_edges, self.num_features, self.depth) < 1:
            raise ConfigurationError("all complexity inputs must be positive")
        if self.classifier_layers < 1:
            raise ConfigurationError("classifier_layers must be positive")
        if self.average_depth is not None and self.average_depth <= 0:
            raise ConfigurationError("average_depth must be positive when provided")

    @property
    def q(self) -> float:
        """Average personalised depth (defaults to the full depth)."""
        return float(self.depth if self.average_depth is None else self.average_depth)


def vanilla_macs(backbone: str, inputs: ComplexityInputs) -> float:
    """Analytic inference MACs of the vanilla backbone (Table I, top row)."""
    n, m, f = inputs.num_nodes, inputs.num_edges, inputs.num_features
    k, p = inputs.depth, inputs.classifier_layers
    name = backbone.upper()
    if name == "SGC":
        return k * m * f + n * f ** 2
    if name == "SIGN":
        return k * m * f + k * p * n * f ** 2
    if name == "S2GC":
        return k * m * f + k * n * f + n * f ** 2
    if name == "GAMLP":
        return k * m * f + p * n * f ** 2
    raise ConfigurationError(f"unknown backbone {backbone!r}; expected one of {_BACKBONES}")


def nai_macs(backbone: str, inputs: ComplexityInputs) -> float:
    """Analytic inference MACs once NAI is deployed (Table I, bottom row)."""
    n, m, f = inputs.num_nodes, inputs.num_edges, inputs.num_features
    p, q = inputs.classifier_layers, inputs.q
    stationary = n ** 2 * f
    name = backbone.upper()
    if name == "SGC":
        return q * m * f + n * f ** 2 + stationary
    if name == "SIGN":
        return q * m * f + q * p * n * f ** 2 + stationary
    if name == "S2GC":
        return q * m * f + q * n * f + n * f ** 2 + stationary
    if name == "GAMLP":
        return q * m * f + p * n * f ** 2 + stationary
    raise ConfigurationError(f"unknown backbone {backbone!r}; expected one of {_BACKBONES}")


def theoretical_speedup(backbone: str, inputs: ComplexityInputs) -> float:
    """Ratio of vanilla to NAI analytic MACs for the same workload."""
    return vanilla_macs(backbone, inputs) / nai_macs(backbone, inputs)


def supported_backbones() -> tuple[str, ...]:
    """Backbones covered by the Table-I formulas."""
    return _BACKBONES
