"""Spans, trace contexts, the bounded recorder, and the tracer front-end.

Design constraints, in order:

1. **Zero cost when off.**  Every call site in the serving stack guards on
   ``tracer is None`` (the default), so the disabled path allocates nothing
   and branches once.  A constructed-but-disabled :class:`Tracer`
   (``enabled=False``, or no recorder) also refuses to allocate contexts:
   all of its factory methods return ``None`` and ``emit`` is a no-op.
2. **Explicit timestamps.**  The serving path already stamps
   ``enqueued_at`` / ``dispatched_at`` / ``completed_at`` from the
   injectable :class:`~repro.serving.clock.Clock`; spans are emitted
   *completed*, with those exact stamps, rather than opened and closed
   across threads.  Under a :class:`~repro.serving.clock.FakeClock` the
   same float ticks therefore appear bit-identically in the request's
   response *and* its span tree, which is what the deterministic tests
   assert.
3. **Bounded memory.**  :class:`TraceRecorder` is a ring buffer: a
   misbehaving workload overwrites old spans instead of growing without
   bound, and counts what it dropped.

``TraceContext`` is the id triple carried on a request (and over the wire
— see :mod:`repro.transport.wire`); ``Span`` is the immutable record of a
finished timed region.  ``None`` is the universal "not traced" sentinel:
``Tracer.child(None)`` is ``None``, ``Tracer.emit(name, None, ...)`` does
nothing, so call sites never branch on sampling themselves.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import ConfigurationError
from ..serving.clock import MONOTONIC_CLOCK, Clock


@dataclass(frozen=True)
class TraceContext:
    """The identity a traced request carries: which trace, which span."""

    trace_id: int
    span_id: int
    parent_id: int | None = None


@dataclass(frozen=True)
class Span:
    """One finished, timed, attributed region of a trace.

    ``start`` and ``end`` are :class:`~repro.serving.clock.Clock` readings
    (seconds; virtual under ``FakeClock``).  ``attributes`` carries
    JSON-serialisable scalars/lists only — exporters dump them verbatim.
    """

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def context(self) -> TraceContext:
        """The context under which children of this span nest."""
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id, parent_id=self.parent_id
        )


class TraceRecorder:
    """Thread-safe bounded ring buffer of finished spans.

    When full, the oldest span is overwritten and :attr:`dropped` grows —
    tracing never becomes a memory leak, only a shorter tail of history.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)

    def spans(self) -> list[Span]:
        """Snapshot of retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())


class Tracer:
    """Hands out trace contexts, records finished spans, samples requests.

    ``sample_every=n`` traces every n-th root (deterministic modular
    counting, not random — the test suite depends on knowing exactly which
    submissions are traced).  A tracer with ``enabled=False`` or no
    recorder is inert: every factory returns ``None`` and ``emit`` drops
    the span, so call sites stay branch-free.

    Span ids are unique per tracer; ``id_offset`` shifts the allocation
    range so spans minted in another process (a forked shard server) can
    join the same trace without colliding — see
    :meth:`repro.transport.socket.ShardServer`.
    """

    def __init__(
        self,
        recorder: TraceRecorder | None = None,
        *,
        clock: Clock | None = None,
        sample_every: int = 1,
        enabled: bool = True,
        id_offset: int = 0,
    ) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        if enabled and recorder is None:
            recorder = TraceRecorder()
        self.recorder = recorder if enabled else None
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.sample_every = sample_every
        self.enabled = bool(enabled and self.recorder is not None)
        self._lock = threading.Lock()
        self._next_trace = 1
        self._next_span = 1 + id_offset
        self._roots_seen = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Context allocation
    # ------------------------------------------------------------------ #
    def new_trace(self) -> TraceContext | None:
        """Root context for a fresh request, or ``None`` when not sampled."""
        if not self.enabled:
            return None
        with self._lock:
            index = self._roots_seen
            self._roots_seen += 1
            if index % self.sample_every != 0:
                return None
            trace_id = self._next_trace
            self._next_trace += 1
            span_id = self._next_span
            self._next_span += 1
        return TraceContext(trace_id=trace_id, span_id=span_id, parent_id=None)

    def child(self, parent: TraceContext | None) -> TraceContext | None:
        """A fresh span id under ``parent`` (``None`` propagates)."""
        if parent is None or not self.enabled:
            return None
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
        return TraceContext(
            trace_id=parent.trace_id, span_id=span_id, parent_id=parent.span_id
        )

    # ------------------------------------------------------------------ #
    # Span emission
    # ------------------------------------------------------------------ #
    def emit(
        self,
        name: str,
        ctx: TraceContext | None,
        start: float,
        end: float,
        **attributes,
    ) -> Span | None:
        """Record a finished span *at* ``ctx`` (its id, under its parent)."""
        if ctx is None or not self.enabled:
            return None
        span = Span(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            name=name,
            start=start,
            end=end,
            attributes=attributes,
        )
        self.recorder.record(span)
        return span

    def emit_under(
        self,
        name: str,
        parent: TraceContext | None,
        start: float,
        end: float,
        **attributes,
    ) -> Span | None:
        """Allocate a child id under ``parent`` and record the span there."""
        return self.emit(name, self.child(parent), start, end, **attributes)

    def event(self, name: str, parent: TraceContext | None, **attributes) -> Span | None:
        """Zero-duration marker (retry fired, failover taken) at ``now()``."""
        if parent is None or not self.enabled:
            return None
        now = self.clock.now()
        return self.emit_under(name, parent, now, now, **attributes)

    class _SpanHandle:
        """Context manager for a clock-timed region; yields the child ctx."""

        __slots__ = ("_tracer", "_name", "_ctx", "_attrs", "_start")

        def __init__(self, tracer: "Tracer", name: str, ctx, attrs) -> None:
            self._tracer = tracer
            self._name = name
            self._ctx = ctx
            self._attrs = attrs

        def __enter__(self):
            self._start = self._tracer.clock.now()
            return self._ctx

        def __exit__(self, exc_type, exc, tb) -> bool:
            if exc_type is not None:
                self._attrs["error"] = repr(exc)
            self._tracer.emit(
                self._name,
                self._ctx,
                self._start,
                self._tracer.clock.now(),
                **self._attrs,
            )
            return False

    def span(self, name: str, parent: TraceContext | None, **attributes):
        """``with tracer.span("fetch.round", parent) as ctx: ...``"""
        return Tracer._SpanHandle(self, name, self.child(parent), attributes)

    # ------------------------------------------------------------------ #
    # Thread-local current context (worker threads activate their batch's
    # compute context; the store's fetch sites pick it up as parent).
    # ------------------------------------------------------------------ #
    def current(self) -> TraceContext | None:
        return getattr(self._local, "ctx", None)

    class _Activation:
        __slots__ = ("_tracer", "_ctx", "_prior")

        def __init__(self, tracer: "Tracer", ctx) -> None:
            self._tracer = tracer
            self._ctx = ctx

        def __enter__(self):
            self._prior = getattr(self._tracer._local, "ctx", None)
            self._tracer._local.ctx = self._ctx
            return self._ctx

        def __exit__(self, exc_type, exc, tb) -> bool:
            self._tracer._local.ctx = self._prior
            return False

    def activate(self, ctx: TraceContext | None):
        """Bind ``ctx`` as this thread's current context for a region."""
        return Tracer._Activation(self, ctx)

    # ------------------------------------------------------------------ #
    def spans(self) -> list[Span]:
        return self.recorder.spans() if self.recorder is not None else []


#: Shared inert tracer: every factory returns ``None``, nothing records.
NULL_TRACER = Tracer(enabled=False)
