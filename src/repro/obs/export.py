"""Span and metric exporters: JSONL, Chrome trace-event, Prometheus text.

Three formats, three audiences:

* **JSON lines** (:func:`write_spans_jsonl` / :func:`load_spans_jsonl`) —
  the machine interchange format.  One span per line; a forked shard
  server appends its wire-side spans to such a file and the client loads
  and merges them into the same trace (ids were propagated in the frame).
* **Chrome trace-event** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — open the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and scrub the
  timeline.  Spans become complete (``"ph": "X"``) events; timestamps are
  microseconds relative to the earliest span so virtual-clock traces
  render sensibly.
* **Prometheus text exposition** (:func:`prometheus_text`) — the
  registry's counters/gauges/histograms in the standard scrape format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span


# ---------------------------------------------------------------------- #
# JSON lines
# ---------------------------------------------------------------------- #
def span_to_dict(span: Span) -> dict:
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attributes": dict(span.attributes),
    }


def span_from_dict(payload: dict) -> Span:
    return Span(
        trace_id=int(payload["trace_id"]),
        span_id=int(payload["span_id"]),
        parent_id=(
            None if payload.get("parent_id") is None else int(payload["parent_id"])
        ),
        name=str(payload["name"]),
        start=float(payload["start"]),
        end=float(payload["end"]),
        attributes=dict(payload.get("attributes") or {}),
    )


def spans_to_dicts(spans: Iterable[Span]) -> list[dict]:
    return [span_to_dict(span) for span in spans]


def write_spans_jsonl(spans: Iterable[Span], path) -> int:
    """Write one span per line; returns the number written."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_spans_jsonl(path) -> list[Span]:
    """Load spans written by :func:`write_spans_jsonl` (or a server log)."""
    spans = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# ---------------------------------------------------------------------- #
# Chrome trace-event JSON
# ---------------------------------------------------------------------- #
def chrome_trace(
    spans: Sequence[Span],
    *,
    process_name: str = "repro-serving",
) -> dict:
    """Spans as a Chrome trace-event document (Perfetto-openable).

    Each trace becomes its own track (``tid`` = trace id), so concurrent
    requests stack as parallel rows on the timeline.  Timestamps are
    rebased to the earliest span and scaled to microseconds — Perfetto
    dislikes huge absolute monotonic-clock values.
    """
    if spans:
        base = min(span.start for span in spans)
    else:
        base = 0.0
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": span.trace_id,
                "name": span.name,
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **dict(span.attributes),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path, **kwargs) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans, **kwargs)), encoding="utf-8")
    return path


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec.

    Backslash first (it is the escape character), then the quote that
    would end the value and the newline that would end the sample line.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """``# HELP`` continuation escaping: backslash and newline only."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels, extra: dict | None = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry.collect():
        if metric.name not in typed:
            help_text = registry.help_text(metric.name)
            if help_text is None:
                help_text = f"{metric.kind} {metric.name}"
            lines.append(f"# HELP {metric.name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            typed.add(metric.name)
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.buckets():
                labels = _format_labels(metric.labels, {"le": _format_value(bound)})
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            inf_labels = _format_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{metric.name}_bucket{inf_labels} {metric.count}")
            base = _format_labels(metric.labels)
            lines.append(f"{metric.name}_sum{base} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{base} {metric.count}")
        elif isinstance(metric, (Counter, Gauge)):
            labels = _format_labels(metric.labels)
            lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"
