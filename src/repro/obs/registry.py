"""Unified metrics registry: counters, gauges, histograms, one namespace.

Before this module every layer grew its own counter plumbing
(``ServingStats``, ``ShardTraffic``, ``TransportStats``); the registry is
the single surface those publish *into*, so an operator reads one
snapshot — or one Prometheus scrape (:func:`repro.obs.export.
prometheus_text`) — instead of four bespoke dicts.  The existing
accumulators stay the source of truth (they are exact and already
tested); :func:`publish_sharded_snapshot` and
:func:`publish_transport_traffic` map them onto registry metrics, and
:meth:`repro.shard.router.ShardRouter.stats` calls them on every
snapshot.

Metric identity is ``(name, sorted labels)``, Prometheus-style:
``registry.counter("repro_fetch_rows_total", shard="2", kind="remote")``
returns the same :class:`Counter` every call.  Gauges ``set``, counters
``inc`` monotonically (``set_total`` resyncs from an authoritative
accumulator), histograms bucket observations cumulatively.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..exceptions import ConfigurationError

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured; callers
#: measuring widths/rows pass their own).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing tally."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    def set_total(self, total: float) -> None:
        """Resync to an authoritative accumulator's running total.

        The serving/transport accumulators already hold exact monotone
        totals; publishing re-states them rather than replaying deltas.
        A total below the current value re-bases the counter — the
        Prometheus counter-reset semantic — which happens legitimately
        when a versioned rollout swaps in a fresh generation whose
        accumulators start from zero.
        """
        with self._lock:
            self._value = float(total)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time level (queue depth, hit rate, remote-byte fraction)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket distribution (Prometheus ``le`` semantics)."""

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelKey, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            # Per-bucket storage is non-cumulative (first fitting bound
            # only); :meth:`buckets` produces the cumulative ``le`` view.
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count_at_or_below)`` pairs."""
        with self._lock:
            running = 0
            out = []
            for bound, count in zip(self.bounds, self._bucket_counts):
                running += count
                out.append((bound, running))
            return out


class MetricsRegistry:
    """Get-or-create home for every metric in the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], object] = {}
        self._help: dict[str, str] = {}

    def set_help(self, name: str, text: str) -> None:
        """Attach a ``# HELP`` line to metric ``name`` (all label sets)."""
        with self._lock:
            self._help[name] = str(text)

    def help_text(self, name: str) -> str | None:
        """The help text registered for ``name``, or ``None``."""
        with self._lock:
            return self._help.get(name)

    def _get(self, factory, name: str, labels: dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, factory):
                raise ConfigurationError(
                    f"metric {name} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def collect(self) -> list[object]:
        """All metrics, sorted by (name, labels) for stable exposition."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> dict[str, float]:
        """Flat ``name{labels} -> value`` dict (histograms expose _count/_sum)."""
        out: dict[str, float] = {}
        for metric in self.collect():
            label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
            suffix = f"{{{label_text}}}" if label_text else ""
            if isinstance(metric, Histogram):
                out[f"{metric.name}_count{suffix}"] = float(metric.count)
                out[f"{metric.name}_sum{suffix}"] = metric.sum
            else:
                out[f"{metric.name}{suffix}"] = metric.value
        return out


# ---------------------------------------------------------------------- #
# Publishers: map the existing exact accumulators onto registry metrics.
# ---------------------------------------------------------------------- #
def publish_sharded_snapshot(registry: MetricsRegistry, snapshot) -> None:
    """Publish a :class:`~repro.shard.stats.ShardedStatsSnapshot`."""
    for field_name in (
        "requests_completed",
        "requests_failed",
        "requests_rejected",
        "requests_shed",
        "requests_replayed",
        "nodes_completed",
        "batches_dispatched",
        "controller_adjustments",
        "cache_hits",
        "cache_misses",
        "result_cache_hits",
        "result_cache_misses",
        "transport_retries",
        "transport_failovers",
        "transport_health_transitions",
    ):
        registry.counter(f"repro_{field_name}_total").set_total(
            getattr(snapshot, field_name)
        )
    registry.counter("repro_computed_macs_total").set_total(snapshot.macs.total)
    registry.gauge("repro_plan_version").set(snapshot.plan_version)
    registry.gauge("repro_cache_hit_rate").set(snapshot.cache_hit_rate)
    registry.gauge("repro_batch_width_p50").set(snapshot.batch_width_p50)
    registry.gauge("repro_batch_width_p95").set(snapshot.batch_width_p95)
    registry.gauge("repro_latency_p95_seconds").set(snapshot.latency.p95)
    registry.gauge("repro_latency_p99_seconds").set(snapshot.latency.p99)
    for shard, per_shard in snapshot.per_shard.items():
        labels = {"shard": str(shard)}
        registry.counter("repro_shard_requests_completed_total", **labels).set_total(
            per_shard.requests_completed
        )
        registry.counter("repro_shard_nodes_completed_total", **labels).set_total(
            per_shard.nodes_completed
        )
        registry.gauge("repro_shard_latency_p95_seconds", **labels).set(
            per_shard.latency.p95
        )


def publish_transport_traffic(registry: MetricsRegistry, traffic: dict) -> None:
    """Publish :meth:`~repro.shard.router.ShardRouter.traffic` output.

    ``traffic`` is the router's ``{"shard_traffic": ..., "transport": ...}``
    dict: per-category local/remote row and byte tallies plus the
    transport's round/request/byte counters.
    """
    shard_traffic = traffic.get("shard_traffic", {})
    for category, detail in shard_traffic.items():
        if not isinstance(detail, dict):
            continue
        for kind in ("local", "remote"):
            rows = detail.get(f"{kind}_rows")
            if rows is not None:
                registry.counter(
                    "repro_fetch_rows_total", category=category, kind=kind
                ).set_total(rows)
            nbytes = detail.get(f"{kind}_bytes")
            if nbytes is not None:
                registry.counter(
                    "repro_fetch_bytes_total", category=category, kind=kind
                ).set_total(nbytes)
    fraction = shard_traffic.get("remote_byte_fraction")
    if fraction is not None:
        registry.gauge("repro_remote_byte_fraction").set(fraction)
    transport = traffic.get("transport", {})
    if transport.get("rounds") is not None:
        registry.counter("repro_transport_rounds_total").set_total(
            transport["rounds"]
        )
    for op, count in (transport.get("requests") or {}).items():
        registry.counter("repro_transport_requests_total", op=op).set_total(count)
    if transport.get("bytes_fetched") is not None:
        registry.counter("repro_transport_bytes_total").set_total(
            transport["bytes_fetched"]
        )
