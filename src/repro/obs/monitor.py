"""Sliding-window health monitoring over the sharded serving fleet.

PR 7's observability layer is cumulative: every counter in
:class:`~repro.obs.registry.MetricsRegistry` is a since-start total, which
answers "how much" but never "how fast *right now*" — the question both an
operator dashboard and the auto-rebalance loop actually ask.  This module
adds the windowed view:

* :class:`SlidingWindow` — a ring of time-bucketed sub-windows on the
  injectable :class:`~repro.serving.clock.Clock`, giving
  rate/p50/p95/p99-over-the-last-N-seconds readings.  Expiry is by bucket
  (span ``window_seconds / num_buckets``), so reads are O(num_buckets)
  and writes O(1); under a :class:`~repro.serving.clock.FakeClock` the
  whole window is deterministic virtual time.
* :class:`HealthMonitor` — snapshots a :class:`~repro.shard.router.
  ShardRouter`'s stats, traffic and interval windows on a cadence and
  derives per-shard windowed load (request/node/failure rates, latency
  percentiles, queue depth) from the existing exact accumulators: serving
  counters arrive as per-tick interval deltas
  (:meth:`~repro.serving.stats.ServingStats.interval_snapshot`), transport
  and traffic counters as deltas of their cumulative totals.  Every
  reading is republished into the registry as a ``*_window`` gauge and
  bundled into a :class:`FleetHealth` — the input of the SLO engine
  (:mod:`repro.obs.slo`) and the rebalance advisor
  (:mod:`repro.obs.rebalance`).

The monitor only *reads*: attaching one changes no prediction, depth or
MAC anywhere (the bit-equality clauses of the monitor benchmark), and a
deployment without one pays nothing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.config import MonitorConfig
from ..exceptions import ConfigurationError
from ..metrics.timing import LatencySummary, latency_summary
from ..serving.clock import MONOTONIC_CLOCK, Clock
from .registry import MetricsRegistry


class _Bucket:
    """One sub-window of a :class:`SlidingWindow` ring slot."""

    __slots__ = ("epoch", "count", "total", "samples")

    def __init__(self) -> None:
        self.epoch: int | None = None
        self.count = 0
        self.total = 0.0
        self.samples: list[float] = []


class SlidingWindow:
    """Rate and percentile readings over the last ``window_seconds``.

    A ring of ``num_buckets`` time buckets: a write lands in the bucket of
    the current epoch (``now // bucket_span``), reclaiming the slot in
    place when its previous epoch has rotated out — no timers, no
    background sweep.  Reads aggregate only buckets whose epoch is still
    inside the window, so data older than ``window_seconds`` (rounded up
    to one bucket span) simply stops counting.

    Two write paths:

    * :meth:`add` folds a counter *delta* into the window (``total`` /
      :meth:`rate` readings — events per second);
    * :meth:`observe` records one sample of a distribution (``count``,
      ``mean`` and the :meth:`summary` percentiles).  At most
      ``sample_cap`` samples are retained across the window (per-bucket
      slices); overflow keeps counting in ``count``/``total`` but drops
      the sample, tallied in :attr:`dropped_samples`.
    """

    def __init__(
        self,
        window_seconds: float,
        *,
        num_buckets: int = 12,
        clock: Clock | None = None,
        sample_cap: int = 4096,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if num_buckets < 1:
            raise ConfigurationError(
                f"num_buckets must be positive, got {num_buckets}"
            )
        if sample_cap < 1:
            raise ConfigurationError(f"sample_cap must be positive, got {sample_cap}")
        self.window_seconds = float(window_seconds)
        self.num_buckets = int(num_buckets)
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._span = self.window_seconds / self.num_buckets
        self._bucket_cap = max(1, int(sample_cap) // self.num_buckets)
        self._lock = threading.Lock()
        self._buckets = [_Bucket() for _ in range(self.num_buckets)]
        self._started = self.clock.now()
        self.dropped_samples = 0

    # ------------------------------------------------------------------ #
    def _bucket_locked(self, now: float) -> _Bucket:
        epoch = int(now // self._span)
        bucket = self._buckets[epoch % self.num_buckets]
        if bucket.epoch != epoch:
            bucket.epoch = epoch
            bucket.count = 0
            bucket.total = 0.0
            bucket.samples = []
        return bucket

    def _live_locked(self, now: float) -> list[_Bucket]:
        min_epoch = int(now // self._span) - self.num_buckets + 1
        return [
            bucket
            for bucket in self._buckets
            if bucket.epoch is not None and bucket.epoch >= min_epoch
        ]

    # ------------------------------------------------------------------ #
    def add(self, amount: float) -> None:
        """Fold a counter delta (e.g. requests completed this tick) in."""
        if amount < 0:
            raise ConfigurationError(f"cannot add a negative delta ({amount})")
        now = self.clock.now()
        with self._lock:
            self._bucket_locked(now).total += float(amount)

    def observe(self, value: float) -> None:
        """Record one distribution sample (latency, queue depth, ...)."""
        now = self.clock.now()
        with self._lock:
            bucket = self._bucket_locked(now)
            bucket.count += 1
            bucket.total += float(value)
            if len(bucket.samples) < self._bucket_cap:
                bucket.samples.append(float(value))
            else:
                self.dropped_samples += 1

    def reset(self) -> None:
        """Forget everything; the window restarts at the current instant."""
        now = self.clock.now()
        with self._lock:
            for bucket in self._buckets:
                bucket.epoch = None
                bucket.count = 0
                bucket.total = 0.0
                bucket.samples = []
            self._started = now
            self.dropped_samples = 0

    # ------------------------------------------------------------------ #
    def total(self) -> float:
        """Sum of everything recorded inside the window."""
        now = self.clock.now()
        with self._lock:
            return sum(bucket.total for bucket in self._live_locked(now))

    def count(self) -> int:
        """Number of :meth:`observe` samples inside the window."""
        now = self.clock.now()
        with self._lock:
            return sum(bucket.count for bucket in self._live_locked(now))

    def _covered_locked(self, now: float) -> float:
        """Span actually covered by the live buckets at ``now``.

        The ring holds the buckets of epochs ``[current - num_buckets + 1,
        current]``, and the current epoch's bucket is only *partially*
        elapsed — right after a rollover the oldest full bucket has just
        been reclaimed, so the live span is ``now`` minus the start of the
        oldest live epoch, not the full ``window_seconds``.  Dividing by
        the window there over-divides every rate by up to one bucket span
        (the pre-fix bug).  Floored at one span so a reading taken moments
        after start/reset is a per-bucket average, not a spike.
        """
        window_start = (
            int(now // self._span) - self.num_buckets + 1
        ) * self._span
        covered = now - max(self._started, window_start)
        return min(self.window_seconds, max(covered, self._span))

    def covered_seconds(self) -> float:
        """Wall span the window currently covers (ramps up after start)."""
        now = self.clock.now()
        with self._lock:
            return self._covered_locked(now)

    def rate(self) -> float:
        """Windowed total per second of covered window span.

        Total and covered span are read under one lock at one ``now`` —
        two separate reads could straddle a bucket rollover and pair a new
        window's total with the old window's span.
        """
        now = self.clock.now()
        with self._lock:
            total = sum(bucket.total for bucket in self._live_locked(now))
            return total / self._covered_locked(now)

    def mean(self) -> float:
        """Mean of the observed samples inside the window (0 when empty)."""
        now = self.clock.now()
        with self._lock:
            live = self._live_locked(now)
            count = sum(bucket.count for bucket in live)
            if count == 0:
                return 0.0
            return sum(bucket.total for bucket in live) / count

    def summary(self) -> LatencySummary:
        """p50/p95/p99 summary of the retained samples inside the window."""
        now = self.clock.now()
        with self._lock:
            samples: list[float] = []
            for bucket in self._live_locked(now):
                samples.extend(bucket.samples)
        return latency_summary(samples)


# ---------------------------------------------------------------------- #
# Health readings
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardHealth:
    """One shard's windowed load at a monitor tick."""

    shard_id: int
    request_rate: float
    node_rate: float
    failure_rate: float
    latency: LatencySummary
    queue_depth: float
    queue_depth_p95: float
    #: The advisor's ranking key: windowed rows served per second — the
    #: live analogue of the degree mass the partitioner boosts on.
    heat: float

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "request_rate": self.request_rate,
            "node_rate": self.node_rate,
            "failure_rate": self.failure_rate,
            "latency_p95_seconds": self.latency.p95,
            "queue_depth": self.queue_depth,
            "queue_depth_p95": self.queue_depth_p95,
            "heat": self.heat,
        }


@dataclass(frozen=True)
class FleetHealth:
    """The whole fleet's windowed state at one monitor tick.

    ``interval_*`` fields cover only the tick just consumed (the delta
    stream the SLO engine folds into its own burn windows); the windowed
    fields aggregate the monitor's full ``window_seconds``.
    """

    at: float
    plan_version: int
    per_shard: dict[int, ShardHealth]
    latency: LatencySummary
    request_rate: float
    failure_rate: float
    transport_retry_rate: float
    transport_failover_rate: float
    remote_byte_rate: float
    interval_latency_samples: tuple[float, ...]
    interval_completed: int
    interval_failed: int

    def hottest_shards(self) -> list[int]:
        """Shard ids by descending heat, ties to the lower id."""
        return [
            shard_id
            for shard_id, _ in sorted(
                self.per_shard.items(), key=lambda item: (-item[1].heat, item[0])
            )
        ]

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "plan_version": self.plan_version,
            "latency_p95_seconds": self.latency.p95,
            "request_rate": self.request_rate,
            "failure_rate": self.failure_rate,
            "transport_retry_rate": self.transport_retry_rate,
            "transport_failover_rate": self.transport_failover_rate,
            "remote_byte_rate": self.remote_byte_rate,
            "interval_completed": self.interval_completed,
            "interval_failed": self.interval_failed,
            "per_shard": {
                str(shard): health.as_dict()
                for shard, health in sorted(self.per_shard.items())
            },
        }


class _ShardWindows:
    """The per-shard window set behind :class:`ShardHealth`."""

    def __init__(self, config: MonitorConfig, clock: Clock) -> None:
        def window() -> SlidingWindow:
            return SlidingWindow(
                config.window_seconds,
                num_buckets=config.num_buckets,
                clock=clock,
                sample_cap=config.sample_cap,
            )

        self.requests = window()
        self.failures = window()
        self.nodes = window()
        self.latency = window()
        self.queue_depth = window()


class HealthMonitor:
    """Cadenced windowed view over a :class:`~repro.shard.router.ShardRouter`.

    The monitor is pull-based and explicit: :meth:`tick` takes one
    snapshot *now*, :meth:`maybe_tick` honours ``config.cadence_seconds``
    — there is no background thread, so under a
    :class:`~repro.serving.clock.FakeClock` the whole monitoring loop is
    deterministic and tests drive it inline with the workload.

    Each tick consumes the router's interval windows (per-shard serving
    deltas since the previous tick), folds them into the per-shard and
    fleet :class:`SlidingWindow` sets, diffs the cumulative
    transport/traffic counters, publishes every reading as a ``*_window``
    gauge in the registry, and returns the assembled
    :class:`FleetHealth`.
    """

    def __init__(
        self,
        router,
        config: MonitorConfig | None = None,
        *,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.router = router
        self.config = config if config is not None else MonitorConfig()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        if registry is not None:
            self.registry = registry
        else:
            self.registry = getattr(router, "registry", None) or MetricsRegistry()
        self._lock = threading.Lock()
        self._shards: dict[int, _ShardWindows] = {}
        self._fleet_latency = self._window()
        self._fleet_requests = self._window()
        self._fleet_failures = self._window()
        self._retries = self._window()
        self._failovers = self._window()
        self._remote_bytes = self._window()
        self._last_transport: dict[str, float] | None = None
        self._last_tick: float | None = None
        self.ticks = 0
        self.last_health: FleetHealth | None = None

    def _window(self) -> SlidingWindow:
        return SlidingWindow(
            self.config.window_seconds,
            num_buckets=self.config.num_buckets,
            clock=self.clock,
            sample_cap=self.config.sample_cap,
        )

    # ------------------------------------------------------------------ #
    def maybe_tick(self) -> FleetHealth | None:
        """:meth:`tick` if the cadence has elapsed since the last one."""
        with self._lock:
            due = (
                self._last_tick is None
                or self.clock.now() - self._last_tick >= self.config.cadence_seconds
            )
        return self.tick() if due else None

    def tick(self) -> FleetHealth:
        """Take one monitoring snapshot and publish the windowed gauges."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self) -> FleetHealth:
        now = self.clock.now()
        # Samples before interval_stats: the latter resets the windows.
        samples_by_shard = self.router.interval_latency_samples()
        intervals = self.router.interval_stats()
        snapshot = self.router.stats()
        traffic = self.router.traffic()

        interval_samples: list[float] = []
        interval_completed = 0
        interval_failed = 0
        per_shard: dict[int, ShardHealth] = {}
        for shard_id, interval in sorted(intervals.items()):
            windows = self._shards.get(shard_id)
            if windows is None:
                windows = self._shards[shard_id] = _ShardWindows(
                    self.config, self.clock
                )
            windows.requests.add(interval.requests_completed)
            windows.failures.add(interval.requests_failed)
            windows.nodes.add(interval.nodes_completed)
            windows.queue_depth.observe(float(interval.queue_depth))
            for sample in samples_by_shard.get(shard_id, ()):
                windows.latency.observe(sample)
                self._fleet_latency.observe(sample)
                interval_samples.append(sample)
            interval_completed += interval.requests_completed
            interval_failed += interval.requests_failed
            per_shard[shard_id] = ShardHealth(
                shard_id=shard_id,
                request_rate=windows.requests.rate(),
                node_rate=windows.nodes.rate(),
                failure_rate=windows.failures.rate(),
                latency=windows.latency.summary(),
                queue_depth=float(interval.queue_depth),
                queue_depth_p95=windows.queue_depth.summary().p95,
                heat=windows.nodes.rate(),
            )
        self._fleet_requests.add(interval_completed)
        self._fleet_failures.add(interval_failed)

        # Transport/traffic counters have no interval surface; window them
        # as deltas of the cumulative totals, baselined at the first tick.
        shard_traffic = traffic.get("shard_traffic", {})
        remote_bytes = sum(
            detail.get("remote_bytes", 0)
            for detail in shard_traffic.values()
            if isinstance(detail, dict)
        )
        current = {
            "retries": float(snapshot.transport_retries),
            "failovers": float(snapshot.transport_failovers),
            "remote_bytes": float(remote_bytes),
        }
        if self._last_transport is not None:
            self._retries.add(
                max(current["retries"] - self._last_transport["retries"], 0.0)
            )
            self._failovers.add(
                max(current["failovers"] - self._last_transport["failovers"], 0.0)
            )
            self._remote_bytes.add(
                max(
                    current["remote_bytes"] - self._last_transport["remote_bytes"],
                    0.0,
                )
            )
        self._last_transport = current

        health = FleetHealth(
            at=now,
            plan_version=snapshot.plan_version,
            per_shard=per_shard,
            latency=self._fleet_latency.summary(),
            request_rate=self._fleet_requests.rate(),
            failure_rate=self._fleet_failures.rate(),
            transport_retry_rate=self._retries.rate(),
            transport_failover_rate=self._failovers.rate(),
            remote_byte_rate=self._remote_bytes.rate(),
            interval_latency_samples=tuple(interval_samples),
            interval_completed=interval_completed,
            interval_failed=interval_failed,
        )
        self._publish(health)
        self._last_tick = now
        self.ticks += 1
        self.last_health = health
        return health

    # ------------------------------------------------------------------ #
    def _publish(self, health: FleetHealth) -> None:
        registry = self.registry
        registry.set_help(
            "repro_request_rate_window",
            "Completed requests per second over the monitor window",
        )
        registry.set_help(
            "repro_latency_p95_window_seconds",
            "p95 request latency over the monitor window",
        )
        registry.set_help(
            "repro_shard_heat_window",
            "Windowed rows served per second, the rebalance ranking key",
        )
        registry.gauge("repro_request_rate_window").set(health.request_rate)
        registry.gauge("repro_failure_rate_window").set(health.failure_rate)
        registry.gauge("repro_latency_p50_window_seconds").set(health.latency.p50)
        registry.gauge("repro_latency_p95_window_seconds").set(health.latency.p95)
        registry.gauge("repro_latency_p99_window_seconds").set(health.latency.p99)
        registry.gauge("repro_transport_retry_rate_window").set(
            health.transport_retry_rate
        )
        registry.gauge("repro_transport_failover_rate_window").set(
            health.transport_failover_rate
        )
        registry.gauge("repro_remote_byte_rate_window").set(health.remote_byte_rate)
        for shard_id, shard in health.per_shard.items():
            labels = {"shard": str(shard_id)}
            registry.gauge("repro_shard_request_rate_window", **labels).set(
                shard.request_rate
            )
            registry.gauge("repro_shard_node_rate_window", **labels).set(
                shard.node_rate
            )
            registry.gauge("repro_shard_failure_rate_window", **labels).set(
                shard.failure_rate
            )
            registry.gauge("repro_shard_latency_p95_window_seconds", **labels).set(
                shard.latency.p95
            )
            registry.gauge("repro_shard_queue_depth_window", **labels).set(
                shard.queue_depth
            )
            registry.gauge("repro_shard_heat_window", **labels).set(shard.heat)

    # ------------------------------------------------------------------ #
    def shard_heat(self) -> dict[int, float]:
        """Windowed heat per shard (empty before the first tick)."""
        with self._lock:
            return {
                shard_id: windows.nodes.rate()
                for shard_id, windows in sorted(self._shards.items())
            }

    def describe(self) -> dict:
        """Monitor configuration and tick accounting."""
        with self._lock:
            return {
                "window_seconds": self.config.window_seconds,
                "num_buckets": self.config.num_buckets,
                "cadence_seconds": self.config.cadence_seconds,
                "ticks": self.ticks,
                "last_tick_at": self._last_tick,
                "shards": sorted(self._shards),
            }
