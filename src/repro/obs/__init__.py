"""Observability: request tracing, a unified metrics registry, exporters.

The serving stack (`repro.serving`), shard router (`repro.shard`) and
transports (`repro.transport`) emit **spans** — timed, attributed tree
nodes — through a :class:`Tracer` into a bounded :class:`TraceRecorder`,
and publish their aggregate counters into a :class:`MetricsRegistry`.
Exporters turn recorded spans into JSON-lines dumps, Chrome trace-event
files (openable in Perfetto / ``chrome://tracing``) and Prometheus-style
text; :class:`CriticalPathAnalyzer` decomposes per-request latency into
queue / coalesce / fetch / compute / scatter components and ranks shards
by attributed load — the signal the auto-rebalancer roadmap item needs.

Everything is off by default: a ``tracer=None`` anywhere in the stack
means the exact pre-observability code path runs, with zero per-request
allocations.  All span timestamps come from the injectable
:class:`~repro.serving.clock.Clock`, so tests on a
:class:`~repro.serving.clock.FakeClock` assert exact virtual-time span
trees.  See ``docs/observability.md``.

On top of the passive layer sits the *active* loop:
:class:`SlidingWindow`/:class:`HealthMonitor` derive windowed (last-N-
seconds) per-shard load from the cumulative accumulators,
:class:`SLOEngine` evaluates declarative :class:`SLO` specs as
multi-window burn rates and emits :class:`Alert` lifecycle transitions
through :class:`AlertSink`\\ s, and :class:`RebalanceAdvisor`/
:class:`AutoRebalancer` turn a firing burn alert into a versioned
replica-boosted plan rollout — observation-driven rebalancing with the
bit-identical-results guarantee intact.
"""

from .analysis import CriticalPathAnalyzer, RequestBreakdown, ShardLoad
from .export import (
    chrome_trace,
    load_spans_jsonl,
    prometheus_text,
    spans_to_dicts,
    write_chrome_trace,
    write_spans_jsonl,
)
from .monitor import FleetHealth, HealthMonitor, ShardHealth, SlidingWindow
from .rebalance import AutoRebalancer, RebalanceAdvisor, RebalanceProposal
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_sharded_snapshot,
    publish_transport_traffic,
)
from .slo import (
    FIRING,
    PENDING,
    RESOLVED,
    SLO,
    Alert,
    AlertSink,
    LogAlertSink,
    MemoryAlertSink,
    SLOEngine,
    slos_from_config,
)
from .trace import NULL_TRACER, Span, TraceContext, Tracer, TraceRecorder

__all__ = [
    "SlidingWindow",
    "HealthMonitor",
    "ShardHealth",
    "FleetHealth",
    "SLO",
    "SLOEngine",
    "Alert",
    "AlertSink",
    "LogAlertSink",
    "MemoryAlertSink",
    "slos_from_config",
    "PENDING",
    "FIRING",
    "RESOLVED",
    "RebalanceAdvisor",
    "RebalanceProposal",
    "AutoRebalancer",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "publish_sharded_snapshot",
    "publish_transport_traffic",
    "CriticalPathAnalyzer",
    "RequestBreakdown",
    "ShardLoad",
    "spans_to_dicts",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
]
