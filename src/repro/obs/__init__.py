"""Observability: request tracing, a unified metrics registry, exporters.

The serving stack (`repro.serving`), shard router (`repro.shard`) and
transports (`repro.transport`) emit **spans** — timed, attributed tree
nodes — through a :class:`Tracer` into a bounded :class:`TraceRecorder`,
and publish their aggregate counters into a :class:`MetricsRegistry`.
Exporters turn recorded spans into JSON-lines dumps, Chrome trace-event
files (openable in Perfetto / ``chrome://tracing``) and Prometheus-style
text; :class:`CriticalPathAnalyzer` decomposes per-request latency into
queue / coalesce / fetch / compute / scatter components and ranks shards
by attributed load — the signal the auto-rebalancer roadmap item needs.

Everything is off by default: a ``tracer=None`` anywhere in the stack
means the exact pre-observability code path runs, with zero per-request
allocations.  All span timestamps come from the injectable
:class:`~repro.serving.clock.Clock`, so tests on a
:class:`~repro.serving.clock.FakeClock` assert exact virtual-time span
trees.  See ``docs/observability.md``.
"""

from .analysis import CriticalPathAnalyzer, RequestBreakdown, ShardLoad
from .export import (
    chrome_trace,
    load_spans_jsonl,
    prometheus_text,
    spans_to_dicts,
    write_chrome_trace,
    write_spans_jsonl,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_sharded_snapshot,
    publish_transport_traffic,
)
from .trace import NULL_TRACER, Span, TraceContext, Tracer, TraceRecorder

__all__ = [
    "Span",
    "TraceContext",
    "TraceRecorder",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "publish_sharded_snapshot",
    "publish_transport_traffic",
    "CriticalPathAnalyzer",
    "RequestBreakdown",
    "ShardLoad",
    "spans_to_dicts",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
]
