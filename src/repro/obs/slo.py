"""SLO specifications, multi-window burn rates and alert lifecycle.

Google-SRE-style burn-rate alerting over the windowed health readings of
:class:`~repro.obs.monitor.HealthMonitor`:

* An :class:`SLO` declares an objective — ``"latency"`` (requests slower
  than ``threshold_seconds`` are *bad*) or ``"error_rate"`` (failed
  requests are bad) — and an error budget: the fraction of bad requests
  the service may serve and still meet the objective (``0.05`` for a
  latency SLO is exactly "p95 under the threshold").
* The :class:`SLOEngine` folds every monitor tick into **two** windows
  per SLO, a fast one (1-minute-equivalent by default) and a slow one
  (1-hour-equivalent).  Each window's *burn rate* is the fraction of bad
  events divided by the budget: burn 1.0 spends the budget exactly at the
  sustainable pace, burn 10 exhausts it ten times too fast.  The alert
  condition requires **both** windows to burn above
  ``burn_rate_threshold`` — the fast window makes the alert react in
  seconds, the slow window keeps a brief blip from paging.
* Alerts move ``pending → firing → resolved``: pending while the
  condition holds but ``for_seconds`` has not elapsed, firing after it
  has, resolved once the condition has stayed clear for
  ``resolve_after_seconds`` (hysteresis against flapping).  Every
  transition is emitted as an immutable :class:`Alert` through the
  registered :class:`AlertSink`\\ s — a log sink for operators, an
  in-memory sink for tests, and the auto-rebalancer
  (:class:`~repro.obs.rebalance.AutoRebalancer`) as the closed-loop
  consumer.

All durations are measured on the injectable clock, so under a
:class:`~repro.serving.clock.FakeClock` the "1m"/"1h" windows are virtual
time and the whole lifecycle is deterministic.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass

from ..core.config import MonitorConfig
from ..exceptions import ConfigurationError
from ..serving.clock import MONOTONIC_CLOCK, Clock
from .monitor import FleetHealth, SlidingWindow

#: Alert lifecycle states.
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

_LOGGER = logging.getLogger("repro.obs.slo")


@dataclass(frozen=True)
class SLO:
    """One service-level objective evaluated as a multi-window burn rate."""

    name: str
    #: ``"latency"`` or ``"error_rate"``.
    objective: str
    #: Latency objective only: requests slower than this are bad.
    threshold_seconds: float = 0.0
    #: Allowed fraction of bad requests (the error budget).
    budget_fraction: float = 0.05
    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 3600.0
    #: Both windows must burn faster than this multiple to alert.
    burn_rate_threshold: float = 1.0
    #: Condition must hold this long before ``pending`` becomes ``firing``.
    for_seconds: float = 0.0
    #: Condition must stay clear this long before ``firing`` resolves.
    resolve_after_seconds: float = 30.0
    #: Fast-window event floor below which the condition never holds.
    min_events: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO needs a name")
        if self.objective not in ("latency", "error_rate"):
            raise ConfigurationError(
                f"objective must be 'latency' or 'error_rate', got "
                f"{self.objective!r}"
            )
        if self.objective == "latency" and self.threshold_seconds <= 0:
            raise ConfigurationError(
                f"a latency SLO needs a positive threshold_seconds, got "
                f"{self.threshold_seconds}"
            )
        if not 0.0 < self.budget_fraction < 1.0:
            raise ConfigurationError(
                f"budget_fraction must lie in (0, 1), got {self.budget_fraction}"
            )
        if self.fast_window_seconds <= 0:
            raise ConfigurationError(
                f"fast_window_seconds must be positive, got "
                f"{self.fast_window_seconds}"
            )
        if self.slow_window_seconds < self.fast_window_seconds:
            raise ConfigurationError(
                "slow_window_seconds must be at least fast_window_seconds"
            )
        if self.burn_rate_threshold <= 0:
            raise ConfigurationError(
                f"burn_rate_threshold must be positive, got "
                f"{self.burn_rate_threshold}"
            )
        if self.for_seconds < 0 or self.resolve_after_seconds < 0:
            raise ConfigurationError(
                "for_seconds and resolve_after_seconds must be non-negative"
            )
        if self.min_events < 1:
            raise ConfigurationError(
                f"min_events must be positive, got {self.min_events}"
            )


@dataclass(frozen=True)
class Alert:
    """One alert lifecycle transition (immutable; sinks receive these)."""

    slo: str
    state: str
    at: float
    burn_fast: float
    burn_slow: float
    message: str = ""

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "state": self.state,
            "at": self.at,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "message": self.message,
        }


class AlertSink:
    """Receives every alert transition; subclass and override ``notify``."""

    def notify(self, alert: Alert) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class LogAlertSink(AlertSink):
    """Writes transitions to the ``repro.obs.slo`` logger."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger if logger is not None else _LOGGER

    def notify(self, alert: Alert) -> None:
        level = logging.WARNING if alert.state == FIRING else logging.INFO
        self.logger.log(
            level,
            "SLO %s %s (burn fast %.2f, slow %.2f) %s",
            alert.slo,
            alert.state,
            alert.burn_fast,
            alert.burn_slow,
            alert.message,
        )


class MemoryAlertSink(AlertSink):
    """Collects transitions in order — the test/bench observer."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def notify(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def states(self, slo: str | None = None) -> list[str]:
        """The transition states seen so far (optionally for one SLO)."""
        return [a.state for a in self.alerts if slo is None or a.slo == slo]


class _SLOState:
    """One SLO's burn windows and lifecycle position."""

    def __init__(self, slo: SLO, clock: Clock, num_buckets: int) -> None:
        self.slo = slo

        def window(seconds: float) -> SlidingWindow:
            # Counter-only windows: percentile samples are never read, so
            # a tiny sample cap keeps the slow (1h) window lightweight.
            return SlidingWindow(
                seconds, num_buckets=num_buckets, clock=clock, sample_cap=1
            )

        self.fast_bad = window(slo.fast_window_seconds)
        self.fast_total = window(slo.fast_window_seconds)
        self.slow_bad = window(slo.slow_window_seconds)
        self.slow_total = window(slo.slow_window_seconds)
        self.state = RESOLVED
        self.pending_since: float | None = None
        self.clear_since: float | None = None

    def ingest(self, samples: tuple[float, ...], completed: int, failed: int) -> None:
        if self.slo.objective == "latency":
            bad = sum(1 for s in samples if s > self.slo.threshold_seconds)
            total = len(samples)
        else:
            bad = failed
            total = completed + failed
        if total:
            self.fast_bad.add(bad)
            self.fast_total.add(total)
            self.slow_bad.add(bad)
            self.slow_total.add(total)

    def burn_rates(self) -> tuple[float, float]:
        def burn(bad: SlidingWindow, total: SlidingWindow) -> float:
            events = total.total()
            if events <= 0:
                return 0.0
            return (bad.total() / events) / self.slo.budget_fraction

        return burn(self.fast_bad, self.fast_total), burn(
            self.slow_bad, self.slow_total
        )


class SLOEngine:
    """Evaluates a set of :class:`SLO`\\ s over monitor ticks.

    Feed it with :meth:`tick` (ingest one :class:`FleetHealth`, then
    evaluate) or drive :meth:`ingest`/:meth:`evaluate` separately; each
    evaluation emits the lifecycle transitions through every sink and
    returns them.
    """

    def __init__(
        self,
        slos,
        *,
        sinks=(),
        clock: Clock | None = None,
        num_buckets: int = 12,
    ) -> None:
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        slos = list(slos)
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names in {names}")
        self._lock = threading.Lock()
        self._states = {
            slo.name: _SLOState(slo, self.clock, num_buckets) for slo in slos
        }
        self.sinks: list[AlertSink] = list(sinks)

    @property
    def slos(self) -> list[SLO]:
        return [state.slo for state in self._states.values()]

    def add_sink(self, sink: AlertSink) -> "SLOEngine":
        self.sinks.append(sink)
        return self

    # ------------------------------------------------------------------ #
    def ingest(self, health: FleetHealth) -> None:
        """Fold one monitor tick's interval deltas into the burn windows."""
        with self._lock:
            for state in self._states.values():
                state.ingest(
                    health.interval_latency_samples,
                    health.interval_completed,
                    health.interval_failed,
                )

    def evaluate(self) -> list[Alert]:
        """Advance every SLO's lifecycle; emit and return the transitions."""
        now = self.clock.now()
        transitions: list[Alert] = []
        with self._lock:
            for state in self._states.values():
                transitions.extend(self._evaluate_one(state, now))
        for alert in transitions:
            for sink in self.sinks:
                sink.notify(alert)
        return transitions

    def tick(self, health: FleetHealth) -> list[Alert]:
        """:meth:`ingest` then :meth:`evaluate` — one call per monitor tick."""
        self.ingest(health)
        return self.evaluate()

    # ------------------------------------------------------------------ #
    def _evaluate_one(self, state: _SLOState, now: float) -> list[Alert]:
        slo = state.slo
        burn_fast, burn_slow = state.burn_rates()
        condition = (
            burn_fast > slo.burn_rate_threshold
            and burn_slow > slo.burn_rate_threshold
            and state.fast_total.total() >= slo.min_events
        )

        def alert(new_state: str, message: str) -> Alert:
            return Alert(
                slo=slo.name,
                state=new_state,
                at=now,
                burn_fast=burn_fast,
                burn_slow=burn_slow,
                message=message,
            )

        transitions: list[Alert] = []
        if state.state == RESOLVED:
            if condition:
                state.pending_since = now
                state.state = PENDING
                transitions.append(alert(PENDING, "burn condition entered"))
        if state.state == PENDING:
            if not condition:
                # Prometheus semantics: a pending alert that clears goes
                # back to inactive silently — it never fired.
                state.state = RESOLVED
                state.pending_since = None
            elif now - state.pending_since >= slo.for_seconds:
                state.state = FIRING
                state.clear_since = None
                transitions.append(
                    alert(FIRING, f"burn sustained for {slo.for_seconds:g}s")
                )
        elif state.state == FIRING:
            if condition:
                state.clear_since = None
            else:
                if state.clear_since is None:
                    state.clear_since = now
                if now - state.clear_since >= slo.resolve_after_seconds:
                    state.state = RESOLVED
                    state.pending_since = None
                    state.clear_since = None
                    transitions.append(
                        alert(
                            RESOLVED,
                            f"clear for {slo.resolve_after_seconds:g}s",
                        )
                    )
        return transitions

    # ------------------------------------------------------------------ #
    def burn_rates(self, name: str) -> tuple[float, float]:
        """Current (fast, slow) burn rates of SLO ``name``."""
        with self._lock:
            return self._states[name].burn_rates()

    def state_of(self, name: str) -> str:
        """Lifecycle state of SLO ``name`` (:data:`PENDING`/...)."""
        with self._lock:
            return self._states[name].state

    def firing(self) -> list[str]:
        """Names of the SLOs currently firing."""
        with self._lock:
            return [
                name
                for name, state in self._states.items()
                if state.state == FIRING
            ]

    def describe(self) -> dict:
        """Per-SLO burn rates and lifecycle states."""
        with self._lock:
            return {
                name: {
                    "objective": state.slo.objective,
                    "state": state.state,
                    "burn_fast": state.burn_rates()[0],
                    "burn_slow": state.burn_rates()[1],
                }
                for name, state in self._states.items()
            }


def slos_from_config(config: MonitorConfig) -> list[SLO]:
    """The SLO set a :class:`~repro.core.config.MonitorConfig` declares.

    A latency SLO when ``latency_slo_threshold_seconds > 0`` and an
    error-rate SLO when ``error_slo_budget_fraction > 0``; both share the
    config's burn windows, threshold and lifecycle timings.
    """
    common = dict(
        fast_window_seconds=config.fast_burn_window_seconds,
        slow_window_seconds=config.slow_burn_window_seconds,
        burn_rate_threshold=config.burn_rate_threshold,
        for_seconds=config.alert_for_seconds,
        resolve_after_seconds=config.resolve_after_seconds,
        min_events=config.min_alert_events,
    )
    slos: list[SLO] = []
    if config.latency_slo_threshold_seconds > 0:
        slos.append(
            SLO(
                name="latency",
                objective="latency",
                threshold_seconds=config.latency_slo_threshold_seconds,
                budget_fraction=config.latency_slo_budget_fraction,
                **common,
            )
        )
    if config.error_slo_budget_fraction > 0:
        slos.append(
            SLO(
                name="error_rate",
                objective="error_rate",
                budget_fraction=config.error_slo_budget_fraction,
                **common,
            )
        )
    return slos
