"""Observation-driven shard rebalancing: advisor + opt-in auto loop.

The partitioner places replicas by *predicted* load (accumulated degree —
the traffic proxy under node-adaptive propagation); this module closes
the loop with *observed* load:

* :class:`RebalanceAdvisor` ranks shards by windowed heat (rows served
  per second, from :meth:`~repro.obs.monitor.HealthMonitor.shard_heat`)
  and proposes a new :class:`~repro.shard.partitioner.ShardPlan` through
  the same placement rule the partitioner uses
  (:func:`~repro.shard.partitioner.plan_replicas_for_load`): boost
  replicas on the observed-hot shards, shed them from shards that went
  cold, stamp a strictly newer ``plan.version``.  Ownership never moves —
  a proposal changes only the replica map, so installing it needs no
  repartitioning and cannot change results.
* :class:`AutoRebalancer` is the opt-in actuator: registered as an
  :class:`~repro.obs.slo.AlertSink`, it reacts to a **firing** SLO burn
  alert by asking the advisor for a proposal, preparing a predictor for
  the proposed plan (through the deployment-supplied ``prepare``
  callable — only the deployment still holds the full graph/features)
  and driving the router's versioned
  :meth:`~repro.shard.router.ShardRouter.install_plan` rollout.
  ``cooldown_seconds`` plus the alert lifecycle's own hysteresis
  (``resolve_after_seconds``) keep it from flapping.

Everything here is deterministic given the same heat readings, and the
whole loop is exercised end-to-end in virtual time by
``benchmarks/bench_monitor.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, ServingError
from ..serving.clock import MONOTONIC_CLOCK, Clock
from .monitor import HealthMonitor
from .slo import FIRING, Alert, AlertSink


@dataclass(frozen=True)
class RebalanceProposal:
    """A proposed plan plus the evidence it was derived from."""

    plan: object
    heat: dict[int, float]
    hot_shards: tuple[int, ...]
    #: Per-shard replica counts before/after (only shards that changed).
    boosted: dict[int, tuple[int, int]]
    shed: dict[int, tuple[int, int]]

    def diff(self) -> dict:
        """JSON-ready before/after view (the demo prints this)."""
        return {
            "version": self.plan.version,
            "hot_shards": list(self.hot_shards),
            "heat": {str(s): h for s, h in sorted(self.heat.items())},
            "boosted": {
                str(s): {"from": old, "to": new}
                for s, (old, new) in sorted(self.boosted.items())
            },
            "shed": {
                str(s): {"from": old, "to": new}
                for s, (old, new) in sorted(self.shed.items())
            },
        }


class RebalanceAdvisor:
    """Proposes replica-map changes from windowed per-shard heat.

    Parameters
    ----------
    base_replication:
        Replica floor every shard keeps (rails ``0 .. base-1``).
    boost:
        Extra rails granted to the observed-hot shards.
    hot_fraction:
        Fraction of shards treated as hot (at least one).
    max_rails:
        Physical rail count; proposed replica lists are clamped so the
        plan never references a rail the deployment does not run.
        ``None`` leaves proposals unclamped.
    """

    def __init__(
        self,
        *,
        base_replication: int = 1,
        boost: int = 1,
        hot_fraction: float = 0.25,
        max_rails: int | None = None,
    ) -> None:
        if base_replication < 1:
            raise ConfigurationError(
                f"base_replication must be positive, got {base_replication}"
            )
        if boost < 0:
            raise ConfigurationError(f"boost must be non-negative, got {boost}")
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must lie in (0, 1], got {hot_fraction}"
            )
        if max_rails is not None and max_rails < base_replication:
            raise ConfigurationError(
                f"max_rails ({max_rails}) cannot be below base_replication "
                f"({base_replication})"
            )
        self.base_replication = base_replication
        self.boost = boost
        self.hot_fraction = hot_fraction
        self.max_rails = max_rails

    def propose(self, plan, heat: dict[int, float]) -> RebalanceProposal | None:
        """A newer-versioned plan for ``heat``, or ``None`` if unchanged.

        ``plan`` is the active :class:`~repro.shard.partitioner.ShardPlan`;
        ``heat`` maps shard id to windowed load (missing shards count as
        cold).  Determinism: same plan + same heat → same proposal.
        """
        # Imported lazily: repro.obs must stay importable without pulling
        # the shard package in at module-import time (and vice versa).
        from ..shard.partitioner import plan_replicas_for_load

        num_shards = plan.num_shards
        load = np.zeros(num_shards, dtype=np.float64)
        for shard_id, value in heat.items():
            if 0 <= int(shard_id) < num_shards:
                load[int(shard_id)] = float(value)
        replicas = plan_replicas_for_load(
            load,
            base=self.base_replication,
            boost=self.boost,
            hot_fraction=self.hot_fraction,
        )
        if self.max_rails is not None:
            replicas = tuple(
                tuple(range(min(len(rails), self.max_rails)))
                for rails in replicas
            )
        current = tuple(plan.replicas_of(shard) for shard in range(num_shards))
        if replicas == current:
            return None
        ranked = sorted(range(num_shards), key=lambda s: (-load[s], s))
        num_hot = sum(
            1 for s in range(num_shards) if len(replicas[s]) > self.base_replication
        )
        boosted = {
            s: (len(current[s]), len(replicas[s]))
            for s in range(num_shards)
            if len(replicas[s]) > len(current[s])
        }
        shed = {
            s: (len(current[s]), len(replicas[s]))
            for s in range(num_shards)
            if len(replicas[s]) < len(current[s])
        }
        return RebalanceProposal(
            plan=plan.with_replicas(replicas, version=plan.version + 1),
            heat={int(s): float(load[s]) for s in range(num_shards)},
            hot_shards=tuple(ranked[:num_hot]),
            boosted=boosted,
            shed=shed,
        )


class AutoRebalancer(AlertSink):
    """Drives versioned plan rollouts when an SLO burn alert fires.

    Register it as a sink on the :class:`~repro.obs.slo.SLOEngine`; on a
    ``firing`` transition (for one of the ``watch``\\ ed SLOs, or any SLO
    when ``watch`` is ``None``) it consults the advisor with the
    monitor's current heat and, outside the cooldown, rolls the proposed
    plan through ``router.install_plan``.

    Parameters
    ----------
    router / advisor / monitor:
        The actuated router, the proposal policy and the heat source.
    prepare:
        ``prepare(plan) -> prepared ShardedPredictor`` — supplied by the
        deployment, which still holds the graph/features the store needs
        to build the new generation.
    cooldown_seconds:
        Minimum spacing between installs (hysteresis on top of the alert
        lifecycle's ``resolve_after_seconds``).
    """

    def __init__(
        self,
        router,
        advisor: RebalanceAdvisor,
        prepare,
        *,
        monitor: HealthMonitor,
        cooldown_seconds: float = 120.0,
        watch=None,
        clock: Clock | None = None,
    ) -> None:
        if cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be non-negative, got {cooldown_seconds}"
            )
        self.router = router
        self.advisor = advisor
        self.prepare = prepare
        self.monitor = monitor
        self.cooldown_seconds = cooldown_seconds
        self.watch = None if watch is None else set(watch)
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = threading.Lock()
        self._last_install_at: float | None = None
        self.installs = 0
        self.skips: dict[str, int] = {}
        self.history: list[dict] = []

    # ------------------------------------------------------------------ #
    def notify(self, alert: Alert) -> None:
        if alert.state != FIRING:
            return
        if self.watch is not None and alert.slo not in self.watch:
            return
        self.rebalance_now(reason=f"slo:{alert.slo}")

    def rebalance_now(self, *, reason: str = "manual") -> RebalanceProposal | None:
        """One advisor consultation + rollout attempt; returns the proposal.

        Returns ``None`` when skipped (cooldown, no heat yet, advisor saw
        nothing to change, or the install was refused); the skip reason is
        tallied in :attr:`skips`.
        """
        now = self.clock.now()
        with self._lock:
            in_cooldown = (
                self._last_install_at is not None
                and now - self._last_install_at < self.cooldown_seconds
            )
            if in_cooldown:
                self._skip("cooldown", reason)
                return None
            heat = self.monitor.shard_heat()
            if not heat:
                self._skip("no_heat", reason)
                return None
            plan = self.router.predictor.store.plan
            proposal = self.advisor.propose(plan, heat)
            if proposal is None:
                self._skip("no_change", reason)
                return None
            try:
                predictor = self.prepare(proposal.plan)
                version = self.router.install_plan(predictor)
            except (ConfigurationError, ServingError) as error:
                self._skip("install_failed", f"{reason}: {error}")
                return None
            self._last_install_at = now
            self.installs += 1
            self.history.append(
                {
                    "at": now,
                    "reason": reason,
                    "version": version,
                    "diff": proposal.diff(),
                }
            )
            registry = getattr(self.router, "registry", None)
            if registry is not None:
                registry.counter("repro_rebalance_installs_total").inc()
                registry.gauge("repro_rebalance_last_version").set(version)
            return proposal

    def _skip(self, kind: str, reason: str) -> None:
        self.skips[kind] = self.skips.get(kind, 0) + 1
        self.history.append({"skipped": kind, "reason": reason})

    def describe(self) -> dict:
        with self._lock:
            return {
                "installs": self.installs,
                "skips": dict(self.skips),
                "cooldown_seconds": self.cooldown_seconds,
                "last_install_at": self._last_install_at,
                "watch": sorted(self.watch) if self.watch is not None else None,
            }
