"""Critical-path decomposition and shard-load attribution over span trees.

:class:`CriticalPathAnalyzer` consumes recorded spans (optionally merged
with a shard server's stitched wire-side spans) and answers the two
questions the aggregate snapshots cannot:

* **"Where did this request's latency go?"** — :meth:`request_breakdowns`
  splits each trace's wall time into queue wait, coalesce wait, support
  build, cross-shard fetch, engine compute, scatter, and retry backoff,
  with whatever remains reported as ``unattributed`` (honesty beats a
  breakdown that always sums to 100%).
* **"Which shard is hot?"** — :meth:`shard_load` folds every
  ``fetch.round`` span's per-shard row counts and (row-proportionally)
  its duration into per-shard totals and ranks them.  This is the
  observed-load signal the ROADMAP's automatic-rebalancing item calls
  for, and on a skewed workload its ranking matches the transport's own
  request counters (asserted in the test suite).

The span taxonomy the serving stack emits is documented in
``docs/observability.md``; the analyzer is deliberately tolerant of
partial trees (sampling, ring-buffer eviction, untraced layers).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .trace import Span

#: Span names that map 1:1 onto a breakdown component.
_DIRECT_COMPONENTS = {
    "queue.wait": "queue",
    "batch.coalesce": "coalesce",
    "engine.compute": "compute",
    "batch.replay": "compute",
    "scatter": "scatter",
    "fetch.round": "fetch",
}

#: Container spans: structure, not time attribution of their own.
_CONTAINERS = {"request", "route", "batch.execute"}


@dataclass
class RequestBreakdown:
    """One trace's wall time split into serving-path components (seconds)."""

    trace_id: int
    total: float
    components: dict[str, float] = field(default_factory=dict)
    retries: int = 0
    failovers: int = 0
    request_ids: list[int] = field(default_factory=list)

    @property
    def unattributed(self) -> float:
        return max(0.0, self.total - sum(self.components.values()))

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "total": self.total,
            "components": dict(self.components),
            "unattributed": self.unattributed,
            "retries": self.retries,
            "failovers": self.failovers,
            "request_ids": list(self.request_ids),
        }


@dataclass
class ShardLoad:
    """Load attributed to one shard across every analysed fetch round."""

    shard_id: int
    rows: int = 0
    rounds: int = 0
    seconds: float = 0.0
    server_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "rows": self.rows,
            "rounds": self.rounds,
            "seconds": self.seconds,
            "server_seconds": self.server_seconds,
        }


class CriticalPathAnalyzer:
    """Builds per-trace trees from spans and attributes time and load."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans = list(spans)
        self._by_trace: dict[int, list[Span]] = defaultdict(list)
        self._children: dict[int, list[Span]] = defaultdict(list)
        for span in self.spans:
            self._by_trace[span.trace_id].append(span)
            if span.parent_id is not None:
                self._children[span.parent_id].append(span)

    # ------------------------------------------------------------------ #
    def trace_ids(self) -> list[int]:
        return sorted(self._by_trace)

    def roots(self) -> list[Span]:
        """Root spans (no recorded parent), ordered by start time."""
        roots = [
            span
            for spans in self._by_trace.values()
            for span in spans
            if span.parent_id is None
        ]
        return sorted(roots, key=lambda s: (s.start, s.trace_id))

    def children_of(self, span: Span) -> list[Span]:
        return sorted(self._children.get(span.span_id, []), key=lambda s: s.start)

    def tree(self, trace_id: int) -> list[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` walk of one trace."""
        out: list[tuple[int, Span]] = []

        def walk(span: Span, depth: int) -> None:
            out.append((depth, span))
            for child in self.children_of(span):
                walk(child, depth + 1)

        for root in self.roots():
            if root.trace_id == trace_id:
                walk(root, 0)
        return out

    # ------------------------------------------------------------------ #
    def request_breakdowns(self) -> list[RequestBreakdown]:
        """One latency decomposition per trace, ordered by root start."""
        breakdowns = []
        for root in self.roots():
            breakdowns.append(self._decompose(root))
        return breakdowns

    def _decompose(self, root: Span) -> RequestBreakdown:
        spans = self._by_trace[root.trace_id]
        breakdown = RequestBreakdown(trace_id=root.trace_id, total=root.duration)
        components: dict[str, float] = defaultdict(float)
        saw_batch = False
        queue_wait = 0.0
        for span in spans:
            name = span.name
            if name in ("batch.execute", "batch.replay"):
                saw_batch = True
            if name == "queue.wait":
                queue_wait += span.duration
            component = _DIRECT_COMPONENTS.get(name)
            if component is not None:
                components[component] += span.duration
            elif name == "support.build":
                nested_fetch = sum(
                    child.duration
                    for child in self.children_of(span)
                    if child.name == "fetch.round"
                )
                components["build"] += max(0.0, span.duration - nested_fetch)
            elif name == "transport.retry":
                breakdown.retries += 1
                components["retry_wait"] += float(
                    span.attributes.get("backoff_seconds", 0.0)
                )
            elif name == "transport.failover":
                breakdown.failovers += 1
            if name == "request":
                request_id = span.attributes.get("request_id")
                if request_id is not None:
                    breakdown.request_ids.append(int(request_id))
        if not saw_batch:
            # This request rode along in a batch whose execution spans live
            # on the primary request's trace; everything after the queue is
            # time spent waiting on (and inside) that batch.
            wait = max(0.0, root.duration - queue_wait)
            if wait > 0.0:
                components["batch_wait"] = wait
        breakdown.components = dict(components)
        return breakdown

    def breakdown_totals(self) -> dict[str, float]:
        """Component sums across every analysed trace (seconds)."""
        totals: dict[str, float] = defaultdict(float)
        for breakdown in self.request_breakdowns():
            for component, seconds in breakdown.components.items():
                totals[component] += seconds
            totals["unattributed"] += breakdown.unattributed
            totals["total"] += breakdown.total
        return dict(totals)

    # ------------------------------------------------------------------ #
    def shard_load(self) -> list[ShardLoad]:
        """Per-shard attributed load, ranked hottest (most rows) first.

        Each ``fetch.round`` span carries the shard ids and per-shard row
        counts of that round; the round's duration is attributed to its
        shards proportionally to rows (evenly when the round fetched zero
        rows).  Wire-side ``server.*`` spans stitched in from a shard
        server's trace log add exact server-side service time.
        """
        loads: dict[int, ShardLoad] = {}

        def load_for(shard_id: int) -> ShardLoad:
            if shard_id not in loads:
                loads[shard_id] = ShardLoad(shard_id=shard_id)
            return loads[shard_id]

        for span in self.spans:
            if span.name == "fetch.round":
                shards = [int(s) for s in span.attributes.get("shards", [])]
                rows = [int(r) for r in span.attributes.get("rows", [])]
                if len(rows) != len(shards):
                    rows = [0] * len(shards)
                total_rows = sum(rows)
                for shard_id, shard_rows in zip(shards, rows):
                    entry = load_for(shard_id)
                    entry.rows += shard_rows
                    entry.rounds += 1
                    if total_rows > 0:
                        entry.seconds += span.duration * (shard_rows / total_rows)
                    elif shards:
                        entry.seconds += span.duration / len(shards)
            elif span.name.startswith("server."):
                shard_id = span.attributes.get("shard")
                if shard_id is not None:
                    load_for(int(shard_id)).server_seconds += span.duration
        return sorted(
            loads.values(), key=lambda load: (-load.rows, load.shard_id)
        )

    def shard_ranking(self) -> list[int]:
        """Shard ids hottest-first (ties broken by id)."""
        return [load.shard_id for load in self.shard_load()]

    # ------------------------------------------------------------------ #
    def merged_with(self, extra_spans: Sequence[Span]) -> "CriticalPathAnalyzer":
        """A new analyzer over these spans plus ``extra_spans`` (stitching)."""
        return CriticalPathAnalyzer(self.spans + list(extra_spans))
