"""In-process transport: zero-copy fetches from resident shard blocks.

``LocalTransport`` is the pre-transport behavior of
:class:`~repro.shard.store.ShardedGraphStore` expressed through the
:class:`~repro.transport.base.ShardTransport` interface: every operation is
answered directly from the :class:`~repro.shard.store.GraphShard` arrays in
this process.  Responses are numpy views or fancy-indexed gathers — no
serialisation, no copies beyond what the assembly itself needs — so it is
both the fastest backend and the oracle the socket backend is measured
against in ``benchmarks/bench_transport.py``.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import TransportError
from .base import RequestBatch, ShardTransport, answer_from_shard


class LocalTransport(ShardTransport):
    """Serves every operation from in-process shard blocks (zero-copy)."""

    def __init__(self, shards: Sequence) -> None:
        super().__init__()
        self._shards = list(shards)
        self._closed = False

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def fetch(self, op: str, requests: RequestBatch) -> list:
        if self._closed:
            raise TransportError(
                "the local transport is closed", op=op, retryable=False
            )
        payloads = []
        for shard_id, rows in requests:
            if not 0 <= shard_id < len(self._shards):
                raise TransportError(
                    f"shard {shard_id} out of range [0, {len(self._shards)})",
                    op=op,
                    shard_id=shard_id,
                    retryable=False,
                )
            payloads.append(answer_from_shard(self._shards[shard_id], op, rows))
        self._record_round(op, requests, payloads)
        return payloads

    def close(self) -> None:
        self._closed = True
