"""Fault-injecting transport wrapper: the test harness of the fault model.

``FaultInjectingTransport`` wraps any :class:`~repro.transport.base.
ShardTransport` and perturbs its rounds on request:

* **drops** — a scheduled round raises :class:`~repro.exceptions.
  TransportError` *before* touching the inner backend (the request never
  left the machine);
* **disconnects** — all rounds fail until :meth:`reconnect`; when the inner
  backend is a :class:`~repro.transport.socket.SocketTransport` its TCP
  connections are genuinely torn down, so recovery exercises the real
  reconnect path;
* **latency** — a fixed per-round delay through an injectable clock
  (:class:`~repro.serving.clock.Clock`), so tests add "network" latency on
  a :class:`~repro.serving.clock.FakeClock` without real waiting;
* **reordering** — the round's requests are issued to the inner backend in
  reversed order while responses are returned in the caller's order,
  verifying that no caller depends on issue order.

Faults can be scheduled two ways: a ``script`` — a list of actions consumed
one per round, each ``"ok"``, ``"drop"`` or ``"disconnect"`` — or the
imperative :meth:`fail_next` / :meth:`disconnect` hooks.  Either way the
wrapper is deterministic: the same script against the same store produces
the same failures at the same rounds.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..exceptions import TransportError
from .base import RequestBatch, ShardTransport

OK = "ok"
DROP = "drop"
DISCONNECT = "disconnect"

_ACTIONS = (OK, DROP, DISCONNECT)


class FaultInjectingTransport(ShardTransport):
    """Wraps a backend with scripted drops, latency, reordering, disconnects."""

    def __init__(
        self,
        inner: ShardTransport,
        *,
        script: Sequence[str] | None = None,
        latency_seconds: float = 0.0,
        reorder: bool = False,
        clock=None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.reorder = reorder
        if clock is None:
            from ..serving.clock import MONOTONIC_CLOCK

            clock = MONOTONIC_CLOCK
        self.clock = clock
        self._lock = threading.Lock()
        self._script: list[str] = []
        if script is not None:
            self.load_script(script)
        self._fail_next = 0
        self._disconnected = False
        self.faults_injected = 0
        self.rounds_seen = 0

    # ------------------------------------------------------------------ #
    # Scheduling surface
    # ------------------------------------------------------------------ #
    def load_script(self, script: Sequence[str]) -> None:
        """Queue one action per upcoming round (consumed front to back)."""
        actions = list(script)
        for action in actions:
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown fault action {action!r}; expected one of {_ACTIONS}"
                )
        with self._lock:
            self._script = actions

    def fail_next(self, rounds: int = 1) -> None:
        """Drop the next ``rounds`` fetch rounds."""
        with self._lock:
            self._fail_next += rounds

    def disconnect(self) -> None:
        """Fail every round until :meth:`reconnect`; drops real connections."""
        with self._lock:
            self._disconnected = True
        if hasattr(self.inner, "disconnect"):
            self.inner.disconnect()

    def reconnect(self) -> None:
        """Clear the disconnected state (the inner backend redials lazily)."""
        with self._lock:
            self._disconnected = False

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.inner.num_shards

    def fetch(self, op: str, requests: RequestBatch) -> list:
        action = self._next_action()
        if action == DISCONNECT and hasattr(self.inner, "disconnect"):
            self.inner.disconnect()
        if action in (DROP, DISCONNECT):
            raise TransportError(
                f"injected {action} on round {self.rounds_seen} ({op})",
                op=op,
                retryable=action == DROP or not self._disconnected,
            )
        if self.latency_seconds > 0:
            self.clock.sleep(self.latency_seconds)
        if self.reorder and len(requests) > 1:
            order = list(range(len(requests) - 1, -1, -1))
            shuffled = [requests[i] for i in order]
            answers = self.inner.fetch(op, shuffled)
            payloads: list = [None] * len(requests)
            for position, answer in zip(order, answers):
                payloads[position] = answer
        else:
            payloads = self.inner.fetch(op, requests)
        self._record_round(op, requests, payloads)
        return payloads

    def _next_action(self) -> str:
        with self._lock:
            self.rounds_seen += 1
            if self._disconnected:
                self.faults_injected += 1
                return DISCONNECT
            if self._script:
                action = self._script.pop(0)
                if action == DISCONNECT:
                    self._disconnected = True
                if action != OK:
                    self.faults_injected += 1
                    return action
                # fall through: an explicit "ok" may still carry latency
            elif self._fail_next > 0:
                self._fail_next -= 1
                self.faults_injected += 1
                return DROP
            return OK

    def close(self) -> None:
        self.inner.close()
