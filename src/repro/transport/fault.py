"""Fault-injecting transport wrapper: the test harness of the fault model.

``FaultInjectingTransport`` wraps any :class:`~repro.transport.base.
ShardTransport` and perturbs its rounds on request:

* **drops** — a scheduled round raises :class:`~repro.exceptions.
  TransportError` *before* touching the inner backend (the request never
  left the machine);
* **disconnects** — all rounds fail until :meth:`reconnect`; when the inner
  backend is a :class:`~repro.transport.socket.SocketTransport` its TCP
  connections are genuinely torn down, so recovery exercises the real
  reconnect path;
* **latency** — a fixed per-round delay through an injectable clock
  (:class:`~repro.serving.clock.Clock`), so tests add "network" latency on
  a :class:`~repro.serving.clock.FakeClock` without real waiting;
* **reordering** — the round's requests are issued to the inner backend in
  reversed order while responses are returned in the caller's order,
  verifying that no caller depends on issue order.

Faults can be scheduled three ways: a ``script`` — a list of actions
consumed one per round, each ``"ok"``, ``"drop"`` or ``"disconnect"`` —,
the imperative :meth:`fail_next` / :meth:`disconnect` hooks, or **targeted
kill-and-heal windows** (:meth:`schedule_kill`): kill shard ``s`` — of
replica ``r``, when the wrapper is tagged with a ``replica_index`` — from
round ``k`` until round ``m`` heals it, failing exactly the rounds that
touch that shard while the rest of the fleet stays up.  Either way the
wrapper is deterministic: the same schedule against the same store produces
the same failures at the same rounds, which is what lets the failover fuzz
suite assert bit-identical recovery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import TransportError
from .base import RequestBatch, ShardTransport

OK = "ok"
DROP = "drop"
DISCONNECT = "disconnect"

_ACTIONS = (OK, DROP, DISCONNECT)


@dataclass(frozen=True)
class KillWindow:
    """One targeted outage: shard ``shard_id`` is dead for a round range.

    The window covers 0-based wrapper rounds ``start_round`` (inclusive)
    through ``heal_round`` (exclusive; ``None`` = never heals).  When
    ``replica_index`` is set, the window only applies to wrappers tagged
    with that replica index — "kill replica r of shard s" in a replicated
    deployment where each rail wraps its backend in its own fault injector.
    """

    shard_id: int
    start_round: int
    heal_round: int | None = None
    replica_index: int | None = None
    retryable: bool = True

    def active(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.heal_round is None or round_index < self.heal_round

    def applies_to(self, replica_index: int | None) -> bool:
        return self.replica_index is None or self.replica_index == replica_index


class FaultInjectingTransport(ShardTransport):
    """Wraps a backend with scripted drops, latency, reordering, disconnects."""

    def __init__(
        self,
        inner: ShardTransport,
        *,
        script: Sequence[str] | None = None,
        latency_seconds: float = 0.0,
        reorder: bool = False,
        clock=None,
        replica_index: int | None = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.reorder = reorder
        #: Which replica rail this wrapper stands for (targeted kills match
        #: on it); ``None`` means untagged — every kill window applies.
        self.replica_index = replica_index
        self._kill_windows: list[KillWindow] = []
        if clock is None:
            from ..serving.clock import MONOTONIC_CLOCK

            clock = MONOTONIC_CLOCK
        self.clock = clock
        self._lock = threading.Lock()
        self._script: list[str] = []
        if script is not None:
            self.load_script(script)
        self._fail_next = 0
        self._disconnected = False
        self.faults_injected = 0
        self.rounds_seen = 0

    # ------------------------------------------------------------------ #
    # Scheduling surface
    # ------------------------------------------------------------------ #
    def load_script(self, script: Sequence[str]) -> None:
        """Queue one action per upcoming round (consumed front to back)."""
        actions = list(script)
        for action in actions:
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown fault action {action!r}; expected one of {_ACTIONS}"
                )
        with self._lock:
            self._script = actions

    def fail_next(self, rounds: int = 1) -> None:
        """Drop the next ``rounds`` fetch rounds."""
        with self._lock:
            self._fail_next += rounds

    def disconnect(self) -> None:
        """Fail every round until :meth:`reconnect`; drops real connections."""
        with self._lock:
            self._disconnected = True
        if hasattr(self.inner, "disconnect"):
            self.inner.disconnect()

    def reconnect(self) -> None:
        """Clear the disconnected state (the inner backend redials lazily)."""
        with self._lock:
            self._disconnected = False

    def schedule_kill(
        self,
        shard_id: int,
        start_round: int,
        heal_round: int | None = None,
        *,
        replica_index: int | None = None,
        retryable: bool = True,
    ) -> KillWindow:
        """Kill ``shard_id`` for rounds ``[start_round, heal_round)``.

        Round indices are 0-based over this wrapper's fetch rounds;
        ``heal_round=None`` keeps the shard dead forever.  When
        ``replica_index`` is given the window fires only on wrappers tagged
        with that index (see the constructor) — the "kill replica r of
        shard s at round k, heal at round m" primitive of the failover
        suite.  ``retryable`` sets the classification of the injected
        :class:`~repro.exceptions.TransportError` (connection-refused during
        a kill window is retryable; a poisoned shard would not be).
        """
        if start_round < 0:
            raise ValueError(f"start_round must be non-negative, got {start_round}")
        if heal_round is not None and heal_round <= start_round:
            raise ValueError(
                f"heal_round ({heal_round}) must exceed start_round ({start_round})"
            )
        window = KillWindow(
            shard_id=shard_id,
            start_round=start_round,
            heal_round=heal_round,
            replica_index=replica_index,
            retryable=retryable,
        )
        with self._lock:
            self._kill_windows.append(window)
        return window

    def clear_kills(self) -> None:
        """Drop every scheduled kill window."""
        with self._lock:
            self._kill_windows = []

    def _check_kills(self, op: str, requests: RequestBatch) -> None:
        """Raise if any request of this round hits an active kill window."""
        with self._lock:
            if not self._kill_windows:
                return
            round_index = self.rounds_seen - 1  # _next_action already ran
            windows = list(self._kill_windows)
        for shard_id, _ in requests:
            for window in windows:
                if (
                    window.shard_id == int(shard_id)
                    and window.active(round_index)
                    and window.applies_to(self.replica_index)
                ):
                    with self._lock:
                        self.faults_injected += 1
                    where = (
                        f"replica {self.replica_index} of "
                        if self.replica_index is not None
                        else ""
                    )
                    raise TransportError(
                        f"injected kill: {where}shard {shard_id} is down on "
                        f"round {round_index} ({op})",
                        op=op,
                        shard_id=int(shard_id),
                        retryable=window.retryable,
                    )

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.inner.num_shards

    def use_tracer(self, tracer) -> "FaultInjectingTransport":
        """Attach a tracer here and on the wrapped backend."""
        self.tracer = tracer
        self.inner.use_tracer(tracer)
        return self

    def fetch(self, op: str, requests: RequestBatch) -> list:
        action = self._next_action()
        if action == DISCONNECT and hasattr(self.inner, "disconnect"):
            self.inner.disconnect()
        if action in (DROP, DISCONNECT):
            raise TransportError(
                f"injected {action} on round {self.rounds_seen} ({op})",
                op=op,
                retryable=action == DROP or not self._disconnected,
            )
        self._check_kills(op, requests)
        if self.latency_seconds > 0:
            self.clock.sleep(self.latency_seconds)
        if self.reorder and len(requests) > 1:
            order = list(range(len(requests) - 1, -1, -1))
            shuffled = [requests[i] for i in order]
            answers = self.inner.fetch(op, shuffled)
            payloads: list = [None] * len(requests)
            for position, answer in zip(order, answers):
                payloads[position] = answer
        else:
            payloads = self.inner.fetch(op, requests)
        self._record_round(op, requests, payloads)
        return payloads

    def _next_action(self) -> str:
        with self._lock:
            self.rounds_seen += 1
            if self._disconnected:
                self.faults_injected += 1
                return DISCONNECT
            if self._script:
                action = self._script.pop(0)
                if action == DISCONNECT:
                    self._disconnected = True
                if action != OK:
                    self.faults_injected += 1
                    return action
                # fall through: an explicit "ok" may still carry latency
            elif self._fail_next > 0:
                self._fail_next -= 1
                self.faults_injected += 1
                return DROP
            return OK

    def close(self) -> None:
        self.inner.close()
