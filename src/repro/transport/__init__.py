"""Pluggable shard transports: how bundle assembly reaches shard state.

The :class:`ShardTransport` interface is extracted from the in-process
fetch surfaces of :class:`~repro.shard.store.ShardedGraphStore` (frontier
expansion, adjacency/feature/degree row fetches); three backends implement
it:

* :class:`LocalTransport` — zero-copy in-process fetches (the default);
* :class:`SocketTransport` — length-prefixed binary RPC over TCP with
  per-shard connection reuse and cross-hop request pipelining, served by
  :class:`ShardServer` / :class:`ShardServerGroup` (``serve_shard`` is the
  blocking process target for real deployments);
* :class:`FaultInjectingTransport` — wraps any backend with scripted
  drops, latency, reordering, disconnects and targeted kill-and-heal
  schedules for tests;
* :class:`ReplicatedTransport` — routes each request to the least-loaded
  live replica rail, retries under a :class:`RetryPolicy` and fails over
  mid-round to sibling replicas (see ``docs/replication.md``).

Because every backend answers with identical arrays, predictions, exit
depths and MAC totals are bit-identical across them — asserted by
``tests/transport/`` and ``benchmarks/bench_transport.py``.  See
``docs/transport.md`` for the backend matrix and the fault model.
"""

from .base import (
    ALL_OPS,
    OP_ADJACENCY,
    OP_DEGREES,
    OP_FEATURES,
    OP_FRONTIER,
    AdjacencyRows,
    ShardTransport,
    TransportStats,
)
from .fault import FaultInjectingTransport, KillWindow
from .local import LocalTransport
from .replica import ReplicatedTransport
from .retry import NO_RETRY, RetryPolicy, call_with_retry
from .socket import ShardServer, ShardServerGroup, SocketTransport, serve_shard

__all__ = [
    "ALL_OPS",
    "NO_RETRY",
    "OP_ADJACENCY",
    "OP_DEGREES",
    "OP_FEATURES",
    "OP_FRONTIER",
    "AdjacencyRows",
    "FaultInjectingTransport",
    "KillWindow",
    "LocalTransport",
    "ReplicatedTransport",
    "RetryPolicy",
    "ShardServer",
    "ShardServerGroup",
    "ShardTransport",
    "SocketTransport",
    "TransportStats",
    "call_with_retry",
    "serve_shard",
]
