"""Wire format of the socket shard transport.

Every message is one length-prefixed frame::

    [u32 frame_length] [payload ...]

Request payloads::

    [u8 opcode] [u64 num_rows] [int64 rows ...]

Response payloads::

    [u8 status] [body ...]

``status`` is 0 (OK — body is the op-specific encoding below) or 1 (error —
body is a UTF-8 message re-raised at the client as
:class:`~repro.exceptions.TransportError`).  Arrays travel as raw
little-endian buffers tagged with a dtype code, so a response decodes with
one ``np.frombuffer`` per array — no pickling, no per-element parsing.

OK bodies by operation::

    frontier_columns:  [u64 count]                      [int64 columns]
    adjacency_rows:    [u64 rows] [u64 nnz] [u8 dtype]  [int64 lengths]
                                                        [int64 columns]
                                                        [dtype data]
    feature_rows:      [u64 rows] [u64 cols] [u8 dtype] [dtype data]
    degree_rows:       [u64 rows]                       [float64 data]
"""

from __future__ import annotations

import struct

import numpy as np

from ..exceptions import TransportError
from .base import (
    ALL_OPS,
    OP_ADJACENCY,
    OP_DEGREES,
    OP_FEATURES,
    OP_FRONTIER,
    AdjacencyRows,
)

_LEN = struct.Struct("<I")
_REQ_HEAD = struct.Struct("<BQ")
_U64 = struct.Struct("<Q")
_U64x2 = struct.Struct("<QQ")

OPCODES = {op: code for code, op in enumerate(ALL_OPS)}
OPS_BY_CODE = {code: op for op, code in OPCODES.items()}

STATUS_OK = 0
STATUS_ERROR = 1

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPES_BY_CODE = {code: dtype for dtype, code in _DTYPE_CODES.items()}

#: Upper bound on a single frame (1 GiB) — a corrupt length prefix must not
#: trigger a gigantic allocation.
MAX_FRAME_BYTES = 1 << 30


def _i64(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array, dtype="<i8").tobytes()


def _dtype_code(dtype: np.dtype) -> int:
    try:
        return _DTYPE_CODES[np.dtype(dtype)]
    except KeyError:
        raise TransportError(
            f"dtype {dtype} is not wire-encodable", retryable=False
        ) from None


def _dtype_from_code(code: int) -> np.dtype:
    try:
        return _DTYPES_BY_CODE[code]
    except KeyError:
        raise TransportError(
            f"corrupt response: unknown dtype code {code}", retryable=False
        ) from None


#: High bit of the opcode byte flags an appended trace header (see below);
#: untraced requests stay byte-identical to the pre-tracing wire format.
TRACE_FLAG = 0x80


def encode_request(
    op: str, rows: np.ndarray, *, trace: tuple[int, int] | None = None
) -> bytes:
    """Encode one request; ``trace=(trace_id, span_id)`` rides in-band.

    A traced request sets :data:`TRACE_FLAG` on the opcode and inserts
    ``[u64 trace_id] [u64 span_id]`` between the head and the rows, so the
    serving shard can mint spans that stitch into the caller's trace.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if trace is None:
        return _REQ_HEAD.pack(OPCODES[op], rows.shape[0]) + _i64(rows)
    trace_id, span_id = trace
    return (
        _REQ_HEAD.pack(OPCODES[op] | TRACE_FLAG, rows.shape[0])
        + _U64x2.pack(trace_id, span_id)
        + _i64(rows)
    )


def decode_request(payload: bytes) -> tuple[str, np.ndarray]:
    """Decode a request, dropping any trace header (compatibility surface)."""
    op, rows, _ = decode_request_traced(payload)
    return op, rows


def decode_request_traced(
    payload: bytes,
) -> tuple[str, np.ndarray, tuple[int, int] | None]:
    """Decode a request plus its ``(trace_id, span_id)`` header, if present."""
    opcode, num_rows = _REQ_HEAD.unpack_from(payload)
    trace = None
    offset = _REQ_HEAD.size
    if opcode & TRACE_FLAG:
        opcode &= ~TRACE_FLAG
        trace = _U64x2.unpack_from(payload, offset)
        offset += _U64x2.size
    if opcode not in OPS_BY_CODE:
        raise TransportError(f"unknown opcode {opcode}", retryable=False)
    rows = np.frombuffer(
        payload, dtype="<i8", count=num_rows, offset=offset
    ).astype(np.int64, copy=False)
    return OPS_BY_CODE[opcode], rows, trace


def encode_error(message: str) -> bytes:
    return bytes([STATUS_ERROR]) + message.encode("utf-8", errors="replace")


def encode_response(op: str, payload) -> bytes:
    head = bytes([STATUS_OK])
    if op == OP_FRONTIER:
        cols = np.asarray(payload, dtype=np.int64)
        return head + _U64.pack(cols.shape[0]) + _i64(cols)
    if op == OP_ADJACENCY:
        assert isinstance(payload, AdjacencyRows)
        data = np.ascontiguousarray(payload.data)
        return (
            head
            + _U64.pack(payload.lengths.shape[0])
            + _U64.pack(payload.columns.shape[0])
            + bytes([_dtype_code(data.dtype)])
            + _i64(payload.lengths)
            + _i64(payload.columns)
            + data.tobytes()
        )
    if op == OP_FEATURES:
        rows = np.ascontiguousarray(payload)
        return (
            head
            + _U64.pack(rows.shape[0])
            + _U64.pack(rows.shape[1])
            + bytes([_dtype_code(rows.dtype)])
            + rows.tobytes()
        )
    if op == OP_DEGREES:
        degrees = np.ascontiguousarray(payload, dtype=np.float64)
        return head + _U64.pack(degrees.shape[0]) + degrees.tobytes()
    raise ValueError(f"unknown transport operation {op!r}")


def decode_response(op: str, payload: bytes):
    status = payload[0]
    if status == STATUS_ERROR:
        raise TransportError(
            payload[1:].decode("utf-8", errors="replace"), op=op
        )
    if status != STATUS_OK:
        raise TransportError(f"corrupt response status {status}", op=op)
    body = payload[1:]
    if op == OP_FRONTIER:
        (count,) = _U64.unpack_from(body)
        return np.frombuffer(body, dtype="<i8", count=count, offset=_U64.size).astype(
            np.int64, copy=False
        )
    if op == OP_ADJACENCY:
        num_rows, nnz = _U64x2.unpack_from(body)
        dtype = _dtype_from_code(body[2 * _U64.size])
        offset = 2 * _U64.size + 1
        lengths = np.frombuffer(body, dtype="<i8", count=num_rows, offset=offset)
        offset += lengths.nbytes
        columns = np.frombuffer(body, dtype="<i8", count=nnz, offset=offset)
        offset += columns.nbytes
        data = np.frombuffer(body, dtype=dtype.newbyteorder("<"), count=nnz, offset=offset)
        return AdjacencyRows(
            lengths=lengths.astype(np.int64, copy=False),
            columns=columns.astype(np.int64, copy=False),
            data=data.astype(dtype, copy=False),
        )
    if op == OP_FEATURES:
        num_rows, num_cols = _U64x2.unpack_from(body)
        dtype = _dtype_from_code(body[2 * _U64.size])
        offset = 2 * _U64.size + 1
        flat = np.frombuffer(
            body, dtype=dtype.newbyteorder("<"), count=num_rows * num_cols, offset=offset
        )
        return flat.astype(dtype, copy=False).reshape(num_rows, num_cols)
    if op == OP_DEGREES:
        (num_rows,) = _U64.unpack_from(body)
        return np.frombuffer(body, dtype="<f8", count=num_rows, offset=_U64.size).astype(
            np.float64, copy=False
        )
    raise ValueError(f"unknown transport operation {op!r}")


def frame(payload: bytes) -> bytes:
    """Length-prefix ``payload`` into one wire frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            retryable=False,
        )
    return _LEN.pack(len(payload)) + payload


def read_frame(
    sock, *, op: str | None = None, shard_id: int | None = None
) -> bytes | None:
    """Read one frame from ``sock``; ``None`` on clean EOF at a boundary.

    Raises :class:`~repro.exceptions.TransportError` on a mid-frame
    disconnect (short read) — the caller must treat the connection as dead.
    Callers that know the in-flight operation pass ``op``/``shard_id`` so
    every raised error carries them: replica failover attributes a culprit
    endpoint from ``error.shard_id``, and an anonymous error forces it to
    implicate the whole sub-round instead of exactly the dead replica.
    """
    header = _read_exact(sock, _LEN.size, eof_ok=True, op=op, shard_id=shard_id)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap",
            retryable=False,
            op=op,
            shard_id=shard_id,
        )
    payload = _read_exact(sock, length, eof_ok=False, op=op, shard_id=shard_id)
    assert payload is not None
    return payload


def _read_exact(
    sock,
    count: int,
    *,
    eof_ok: bool,
    op: str | None = None,
    shard_id: int | None = None,
) -> bytes | None:
    chunks = []
    got = 0
    while got < count:
        try:
            chunk = sock.recv(min(count - got, 1 << 20))
        except OSError as error:
            raise TransportError(
                f"socket read failed: {error}", op=op, shard_id=shard_id
            ) from error
        if not chunk:
            if eof_ok and got == 0:
                return None
            raise TransportError(
                f"connection closed mid-frame ({got}/{count} bytes read)",
                op=op,
                shard_id=shard_id,
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
