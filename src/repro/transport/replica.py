"""Replica-set transport: load-balanced reads, retry-aware failover, health.

All shard reads are stateless — every replica of a shard answers every
operation with byte-identical arrays — so read replication needs no leader
and no write path: the only hard problems are *routing* (which replica
serves this request), *failover* (what happens when one dies mid-bundle)
and *honest accounting*.  :class:`ReplicatedTransport` solves all three
behind the ordinary :class:`~repro.transport.base.ShardTransport` surface,
so the sharded store and every engine above it are replication-oblivious.

Deployment model
----------------
Replicas are organised as **rails**: rail ``r`` is a complete
:class:`ShardTransport` (an in-process :class:`~repro.transport.local.
LocalTransport`, a :class:`~repro.transport.socket.SocketTransport` dialing
a second server fleet, or a fault-injecting wrapper in tests), and the
*replica map* — ``replicas[shard_id] -> (rail_id, ...)`` from
:class:`~repro.shard.partitioner.ShardPlan` — says which rails actually
host a copy of which shard.  Hot shards list extra rails; cold shards can
stay single-homed.  Endpoint ``(shard s, rail r)`` is one replica.

Routing
-------
Each request of a round goes to the **least-loaded live** replica of its
shard: healthy endpoints ordered by rows served so far (ties to the lowest
rail id — deterministic).  Requests that land on the same rail still form
one sub-round, preserving the inner backend's pipelining.

Failover
--------
A failing sub-round is first retried in place under the
:class:`~repro.transport.retry.RetryPolicy` (retryable errors only, capped
jittered backoff through the injectable clock).  When retries exhaust — or
the error is non-retryable — every endpoint of the sub-round is marked
unhealthy and each of its requests **fails over mid-round** to the next
best sibling replica, each attempt under the same retry policy.  Only when
every replica of a shard has failed in one round does the caller see an
error: a single clean, non-retryable :class:`~repro.exceptions.
TransportError` naming the shard and the operation.  No partial payloads
ever escape.

Health
------
Unhealthy endpoints are skipped by routing for ``probe_after_rounds``
selection rounds on their shard, then re-admitted on probation: the next
pick may route one request to them, and a success heals them (a failure
re-marks them).  A shard whose every replica is unhealthy probes them all
before giving up, so a healed fleet recovers without operator action.
Every health flip, retry and failover is counted in
:class:`~repro.transport.base.TransportStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, TransportError
from ..obs.monitor import SlidingWindow
from ..serving.clock import MONOTONIC_CLOCK, Clock
from .base import RequestBatch, ShardTransport
from .retry import RetryPolicy, call_with_retry


@dataclass
class _Replica:
    """One (shard, rail) endpoint's routing state."""

    shard_id: int
    rail_id: int
    healthy: bool = True
    rows_served: int = 0
    #: Shard-round at which this endpoint was last marked unhealthy.
    marked_round: int = 0
    #: Windowed sub-round latency of this endpoint (latency routing only).
    latency_window: SlidingWindow | None = None


class ReplicatedTransport(ShardTransport):
    """Routes every fetch to the least-loaded live replica, with failover.

    Parameters
    ----------
    rails:
        One full :class:`ShardTransport` per replica rail.  All rails must
        reach the same number of shards.
    replicas:
        Per-shard rail ids hosting that shard
        (:attr:`~repro.shard.partitioner.ShardPlan.replicas`).  ``None``
        puts every shard on every rail.
    retry_policy:
        Per-attempt retry budget (see :class:`RetryPolicy`).  The default
        allows two retries with capped jittered backoff.
    clock:
        Time source for the backoff waits — inject a
        :class:`~repro.serving.clock.FakeClock` to retry in virtual time.
    probe_after_rounds:
        How many selection rounds on a shard an unhealthy replica sits out
        before routing re-admits it on probation.
    route_by:
        ``"rows"`` (default) picks the live replica that served the fewest
        rows — exact, free, and blind to *how fast* replicas answer.
        ``"latency"`` picks the replica with the lowest windowed mean
        sub-round latency (measured on the injectable clock), so a slow
        rail — cold cache, noisy neighbour, long haul — organically sheds
        read traffic to its faster siblings.  Replicas are byte-identical,
        so the routing policy can never change results, only placement.
    latency_window_seconds / latency_window_buckets:
        Span and granularity of the per-endpoint latency window.  An
        endpoint with no samples in the window reads as 0 and is probed
        first (ties fall back to rows served, then rail id — still fully
        deterministic).
    """

    def __init__(
        self,
        rails: Sequence[ShardTransport],
        replicas: Sequence[Sequence[int]] | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        clock: Clock | None = None,
        probe_after_rounds: int = 4,
        route_by: str = "rows",
        latency_window_seconds: float = 30.0,
        latency_window_buckets: int = 6,
    ) -> None:
        super().__init__()
        self.rails = list(rails)
        if not self.rails:
            raise ConfigurationError("ReplicatedTransport needs at least one rail")
        num_shards = self.rails[0].num_shards
        for index, rail in enumerate(self.rails):
            if rail.num_shards != num_shards:
                raise ConfigurationError(
                    f"rail {index} reaches {rail.num_shards} shards, rail 0 "
                    f"reaches {num_shards}"
                )
        if probe_after_rounds < 1:
            raise ConfigurationError(
                f"probe_after_rounds must be positive, got {probe_after_rounds}"
            )
        if replicas is None:
            replicas = tuple(
                tuple(range(len(self.rails))) for _ in range(num_shards)
            )
        replicas = tuple(tuple(int(r) for r in rail_ids) for rail_ids in replicas)
        if len(replicas) != num_shards:
            raise ConfigurationError(
                f"replica map covers {len(replicas)} shards, rails reach "
                f"{num_shards}"
            )
        for shard_id, rail_ids in enumerate(replicas):
            if not rail_ids:
                raise ConfigurationError(f"shard {shard_id} has no replicas")
            for rail_id in rail_ids:
                if not 0 <= rail_id < len(self.rails):
                    raise ConfigurationError(
                        f"shard {shard_id} lists rail {rail_id}, but only "
                        f"{len(self.rails)} rails exist"
                    )
        if route_by not in ("rows", "latency"):
            raise ConfigurationError(
                f"route_by must be 'rows' or 'latency', got {route_by!r}"
            )
        self._num_shards = num_shards
        self.replica_map = replicas
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.probe_after_rounds = probe_after_rounds
        self.route_by = route_by
        self._replicas: list[list[_Replica]] = [
            [
                _Replica(
                    shard_id=shard_id,
                    rail_id=rail_id,
                    latency_window=(
                        SlidingWindow(
                            latency_window_seconds,
                            num_buckets=latency_window_buckets,
                            clock=self.clock,
                            sample_cap=256,
                        )
                        if route_by == "latency"
                        else None
                    ),
                )
                for rail_id in rail_ids
            ]
            for shard_id, rail_ids in enumerate(replicas)
        ]
        self._shard_rounds = [0] * num_shards
        self._health_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self._num_shards

    def use_tracer(self, tracer) -> "ReplicatedTransport":
        """Attach a tracer here and on every rail (wire propagation)."""
        self.tracer = tracer
        for rail in self.rails:
            rail.use_tracer(tracer)
        return self

    def fetch(self, op: str, requests: RequestBatch) -> list:
        if not requests:
            return []
        # Phase 1 — route: pick the least-loaded live replica per request,
        # then group same-rail picks so the inner backend still pipelines.
        picks = [
            self._pick_replica(int(shard_id), first_pick=True)
            for shard_id, _ in requests
        ]
        by_rail: dict[int, list[int]] = {}
        for position, replica in enumerate(picks):
            by_rail.setdefault(replica.rail_id, []).append(position)

        payloads: list = [None] * len(requests)
        # Phase 2 — fetch each rail's sub-round (ascending rail id keeps the
        # failure order deterministic), failing over per request on error.
        for rail_id in sorted(by_rail):
            positions = by_rail[rail_id]
            sub_requests = [requests[position] for position in positions]
            started = self.clock.now() if self.route_by == "latency" else 0.0
            try:
                answers = self._fetch_rail(rail_id, op, sub_requests)
            except TransportError as error:
                # Attribute the failure: an error naming a shard implicates
                # only that shard's endpoint on this rail; an anonymous one
                # (whole-rail death, dropped round) implicates them all.
                culprit = error.shard_id
                for position in positions:
                    if culprit is None or culprit == int(requests[position][0]):
                        self._mark_unhealthy(picks[position])
                for position in positions:
                    shard_id, rows = requests[position]
                    implicated = culprit is None or culprit == int(shard_id)
                    # A non-implicated request may retry this very rail as
                    # its own one-request round before moving to siblings.
                    payloads[position] = self._fail_over(
                        op,
                        int(shard_id),
                        rows,
                        tried={rail_id} if implicated else set(),
                        cause=error,
                    )
                continue
            if self.route_by == "latency":
                # Every request of the sub-round experienced the whole
                # round; attribute its duration to each endpoint once.
                elapsed = self.clock.now() - started
                for replica in {id(picks[p]): picks[p] for p in positions}.values():
                    replica.latency_window.observe(elapsed)
            for position, answer in zip(positions, answers):
                self._mark_served(picks[position], requests[position][1])
                payloads[position] = answer
        self._record_round(op, requests, payloads)
        return payloads

    def close(self) -> None:
        for rail in self.rails:
            rail.close()

    # ------------------------------------------------------------------ #
    # Routing + health
    # ------------------------------------------------------------------ #
    def _pick_replica(self, shard_id: int, *, first_pick: bool) -> _Replica:
        """Least-loaded live replica of ``shard_id`` (probation included).

        ``first_pick`` advances the shard's selection-round counter — the
        unit probation is measured in; failover re-picks within the same
        round do not.
        """
        if not 0 <= shard_id < self._num_shards:
            raise TransportError(
                f"shard {shard_id} out of range [0, {self._num_shards})",
                shard_id=shard_id,
                retryable=False,
            )
        with self._health_lock:
            if first_pick:
                self._shard_rounds[shard_id] += 1
            return self._pick_locked(shard_id, exclude=frozenset())

    def _pick_locked(
        self, shard_id: int, exclude: frozenset[int]
    ) -> _Replica | None:
        candidates = [
            replica
            for replica in self._replicas[shard_id]
            if replica.rail_id not in exclude
        ]
        if not candidates:
            return None
        shard_round = self._shard_rounds[shard_id]
        live = [
            replica
            for replica in candidates
            if replica.healthy
            or shard_round - replica.marked_round >= self.probe_after_rounds
        ]
        if live:
            if self.route_by == "latency":
                # Fastest windowed endpoint wins; an endpoint with no
                # recent samples reads 0 and gets probed.  Ties (both
                # cold, or equally fast) fall back to the rows-served
                # order, so the policy stays deterministic.
                return min(
                    live,
                    key=lambda r: (
                        r.latency_window.mean(),
                        r.rows_served,
                        r.rail_id,
                    ),
                )
            return min(live, key=lambda r: (r.rows_served, r.rail_id))
        # Every remaining replica is freshly unhealthy: probe the one that
        # has been down the longest (the all-replicas-dead last resort).
        return min(candidates, key=lambda r: (r.marked_round, r.rail_id))

    def _mark_unhealthy(self, replica: _Replica) -> None:
        with self._health_lock:
            if replica.healthy:
                replica.healthy = False
                with self._stats_lock:
                    self.stats.health_transitions += 1
            replica.marked_round = self._shard_rounds[replica.shard_id]

    def _mark_served(self, replica: _Replica, rows: np.ndarray) -> None:
        with self._health_lock:
            replica.rows_served += int(np.asarray(rows).shape[0])
            if not replica.healthy:
                replica.healthy = True
                with self._stats_lock:
                    self.stats.health_transitions += 1

    # ------------------------------------------------------------------ #
    # Fetch + failover
    # ------------------------------------------------------------------ #
    def _fetch_rail(self, rail_id: int, op: str, sub_requests: RequestBatch) -> list:
        """One rail sub-round under the retry policy."""

        def on_retry(error: TransportError, delay: float) -> None:
            with self._stats_lock:
                self.stats.retries += 1
            if self.tracer is not None:
                self.tracer.event(
                    "transport.retry",
                    self.tracer.current(),
                    op=op,
                    rail=rail_id,
                    shard=error.shard_id,
                    backoff_seconds=delay,
                    error=str(error),
                )

        return call_with_retry(
            self.retry_policy,
            self.clock,
            lambda: self.rails[rail_id].fetch(op, sub_requests),
            on_retry=on_retry,
        )

    def _fail_over(
        self,
        op: str,
        shard_id: int,
        rows: np.ndarray,
        *,
        tried: set[int],
        cause: TransportError,
    ):
        """Serve one request from sibling replicas after its pick failed.

        Tries every remaining replica of the shard at most once (each under
        the retry policy, health-preferred order); raises a clean,
        non-retryable error naming the shard once all are exhausted.
        """
        last_error: TransportError = cause
        while True:
            with self._health_lock:
                replica = self._pick_locked(shard_id, exclude=frozenset(tried))
            if replica is None:
                total = len(self._replicas[shard_id])
                raise TransportError(
                    f"all {total} replica(s) of shard {shard_id} failed "
                    f"({op}): {last_error}",
                    op=op,
                    shard_id=shard_id,
                    retryable=False,
                ) from last_error
            with self._stats_lock:
                self.stats.failovers += 1
            if self.tracer is not None:
                self.tracer.event(
                    "transport.failover",
                    self.tracer.current(),
                    op=op,
                    shard=shard_id,
                    to_rail=replica.rail_id,
                    error=str(last_error),
                )
            started = self.clock.now() if self.route_by == "latency" else 0.0
            try:
                answers = self._fetch_rail(replica.rail_id, op, [(shard_id, rows)])
            except TransportError as error:
                last_error = error
                self._mark_unhealthy(replica)
                tried.add(replica.rail_id)
                continue
            if self.route_by == "latency":
                replica.latency_window.observe(self.clock.now() - started)
            self._mark_served(replica, rows)
            return answers[0]

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Replica health, per-endpoint load and the failover counters."""
        with self._health_lock:
            shards = {
                shard_id: [
                    {
                        "rail": replica.rail_id,
                        "healthy": replica.healthy,
                        "rows_served": replica.rows_served,
                        **(
                            {
                                "latency_mean_window": (
                                    replica.latency_window.mean()
                                )
                            }
                            if replica.latency_window is not None
                            else {}
                        ),
                    }
                    for replica in endpoint_list
                ]
                for shard_id, endpoint_list in enumerate(self._replicas)
            }
        with self._stats_lock:
            counters = {
                "retries": self.stats.retries,
                "failovers": self.stats.failovers,
                "health_transitions": self.stats.health_transitions,
            }
        return {
            "num_rails": len(self.rails),
            "probe_after_rounds": self.probe_after_rounds,
            "route_by": self.route_by,
            "retry_policy": {
                "max_attempts": self.retry_policy.max_attempts,
                "backoff_base_seconds": self.retry_policy.backoff_base_seconds,
                "backoff_cap_seconds": self.retry_policy.backoff_cap_seconds,
            },
            "shards": shards,
            **counters,
        }
