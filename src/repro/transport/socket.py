"""Networked shard transport: TCP RPC client and per-shard servers.

:class:`ShardServer` owns one :class:`~repro.shard.store.GraphShard` and
serves its CSR blocks over length-prefixed binary frames (see
:mod:`.wire`); one accept loop, one thread per connection, requests on a
connection answered strictly in arrival order.  That ordering guarantee is
what makes client-side **pipelining** safe: :class:`SocketTransport` writes
every request of a round before reading the first response, so a
cross-shard hop pays one round trip instead of one per shard.

Connections are opened lazily, reused across rounds, and torn down on any
framing error; the next round transparently reconnects, which is the
"retry once on reconnect" recovery story the fault tests exercise.

``serve_shard`` is the blocking process target — a networked deployment
runs one per machine (``multiprocessing.Process(target=serve_shard, ...)``
or an equivalent service wrapper); :class:`ShardServerGroup` starts the
whole fleet in-process (threads, real TCP on loopback) for tests and
benchmarks.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Sequence

from ..exceptions import TransportError
from . import wire
from .base import RequestBatch, ShardTransport, answer_from_shard


class ShardServer:
    """Serves one shard's blocks over TCP; one thread per connection.

    ``trace_log`` (optional) is a path the server appends one JSON span per
    *traced* request to — requests whose frames carry a
    :data:`~repro.transport.wire.TRACE_FLAG` header.  Each record parents
    under the client's in-flight ``fetch.round`` span (the propagated span
    id), with server-minted span ids offset by the server pid so ids from
    different processes never collide; ``repro.obs.load_spans_jsonl``
    reads the file back for cross-process trace stitching.  Timestamps are
    ``time.monotonic()`` — on Linux a system-wide clock, so they are
    directly comparable with a client tracing on the monotonic clock.
    """

    def __init__(
        self,
        shard,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_log: str | os.PathLike | None = None,
    ) -> None:
        self.shard = shard
        self.trace_log = trace_log
        self._trace_span_ids = iter(range(1, 1 << 62))
        self._listener = socket.create_server((host, port))
        # A timed accept loop: closing the listener from another thread does
        # not reliably wake a blocking accept(), so the loop polls the stop
        # flag a few times a second instead — stop() returns promptly.
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._stopping = False
        self.requests_served = 0

    # ------------------------------------------------------------------ #
    def start(self) -> "ShardServer":
        """Begin accepting connections on a background thread."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"shard-server-{self.shard.shard_id}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every live connection."""
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            _close_socket(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def drop_connections(self) -> None:
        """Kill live connections only (the listener survives) — fault hook.

        Clients see a mid-stream disconnect and must surface a
        :class:`~repro.exceptions.TransportError`; their next round
        reconnects against the still-listening server.
        """
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            _close_socket(conn)

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            conn.settimeout(None)
            with self._conn_lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    payload = wire.read_frame(
                        conn, shard_id=self.shard.shard_id
                    )
                except TransportError:
                    return
                if payload is None:
                    return
                try:
                    op, rows, trace = wire.decode_request_traced(payload)
                    started = time.monotonic()
                    response = wire.encode_response(
                        op, answer_from_shard(self.shard, op, rows)
                    )
                    if trace is not None and self.trace_log is not None:
                        self._log_span(op, rows, trace, started)
                except TransportError as error:
                    response = wire.encode_error(str(error))
                except Exception as error:  # noqa: BLE001 - shipped to client
                    response = wire.encode_error(f"{type(error).__name__}: {error}")
                # One thread per connection: the counter needs the lock.
                with self._conn_lock:
                    self.requests_served += 1
                try:
                    conn.sendall(wire.frame(response))
                except OSError:
                    return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            _close_socket(conn)

    def _log_span(
        self, op: str, rows, trace: tuple[int, int], started: float
    ) -> None:
        """Append one server-side span for a traced request (JSONL)."""
        trace_id, parent_span_id = trace
        pid = os.getpid()
        with self._conn_lock:
            span_id = (pid << 24) + next(self._trace_span_ids)
        record = {
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_span_id,
            "name": f"server.{op}",
            "start": started,
            "end": time.monotonic(),
            "attributes": {
                "shard": int(self.shard.shard_id),
                "rows": int(rows.shape[0]),
                "pid": pid,
            },
        }
        # One O_APPEND write per record keeps concurrent connection threads
        # (and forked sibling servers sharing the file) line-atomic.
        with open(self.trace_log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_shard(
    shard,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    port_out=None,
    trace_log: str | os.PathLike | None = None,
) -> None:
    """Blocking process target: serve ``shard`` until the process dies.

    Designed for ``multiprocessing.Process(target=serve_shard, ...)`` with
    the fork start method (the shard's arrays are inherited, not pickled).
    ``port_out`` (optional, e.g. ``multiprocessing.Value("i")``) receives
    the actually-bound port — pass ``port=0`` to let the OS pick one —
    and ``ready`` (e.g. ``multiprocessing.Event``) is set once the listener
    accepts connections, so the parent knows when to dial.
    """
    server = ShardServer(shard, host=host, port=port, trace_log=trace_log).start()
    if port_out is not None:
        port_out.value = server.address[1]
    if ready is not None:
        ready.set()
    assert server._accept_thread is not None
    server._accept_thread.join()


class ShardServerGroup:
    """One :class:`ShardServer` per shard of a store — the loopback fleet."""

    def __init__(
        self,
        shards: Sequence,
        *,
        host: str = "127.0.0.1",
        trace_log: str | os.PathLike | None = None,
    ) -> None:
        # One shared trace log is safe: every server appends line-atomically.
        self.servers = [
            ShardServer(shard, host=host, trace_log=trace_log) for shard in shards
        ]

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [server.address for server in self.servers]

    def start(self) -> "ShardServerGroup":
        for server in self.servers:
            server.start()
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.stop()

    def connect(self, **transport_kwargs) -> "SocketTransport":
        """A :class:`SocketTransport` wired to every server in the group."""
        return SocketTransport(self.addresses, **transport_kwargs)

    def __enter__(self) -> "ShardServerGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class SocketTransport(ShardTransport):
    """RPC client over per-shard TCP connections with round pipelining.

    Parameters
    ----------
    addresses:
        ``(host, port)`` of each shard's server, indexed by shard id.
    pipeline:
        When true (default) every request of a round is written before the
        first response is read — one round trip per cross-shard hop.  When
        false, requests run strictly send→receive one shard at a time (the
        benchmark's pipelining-off baseline).
    timeout_seconds:
        Socket timeout for connects, sends and receives.  A stuck server
        surfaces as a :class:`~repro.exceptions.TransportError` instead of a
        hang — the watchdog of last resort for the serving stack.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        *,
        pipeline: bool = True,
        timeout_seconds: float = 30.0,
    ) -> None:
        super().__init__()
        self.addresses = [tuple(address) for address in addresses]
        self.pipeline = pipeline
        self.timeout_seconds = timeout_seconds
        self._connections: dict[int, socket.socket] = {}
        self._closed = False
        # One round at a time: connections are stateful streams, and the
        # response-matching contract (in-order per connection) only holds if
        # rounds do not interleave.  Serving threads share one transport.
        self._round_lock = threading.Lock()
        self._ever_dialed: set[int] = set()
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        #: All connections ever established, first dials included.
        self.connections_opened = 0
        #: Re-dials only — a clean run against healthy servers keeps this 0.
        self.reconnects = 0

    @property
    def num_shards(self) -> int:
        return len(self.addresses)

    # ------------------------------------------------------------------ #
    def fetch(self, op: str, requests: RequestBatch) -> list:
        if self._closed:
            raise TransportError(
                "the socket transport is closed", op=op, retryable=False
            )
        with self._round_lock:
            try:
                if self.pipeline:
                    frames = self._fetch_pipelined(op, requests)
                else:
                    frames = self._fetch_sequential(op, requests)
            except TransportError:
                # A round that died mid-flight may leave unread responses in
                # *other* shards' streams; reusing those connections would
                # desync every later round.  Reset them all — the next round
                # redials lazily (the retry-once-on-reconnect contract).
                for shard_id in list(self._connections):
                    self._drop_connection(shard_id)
                raise
        # Every stream is fully drained at this point; decoding (which also
        # re-raises server-side application errors) cannot desync anything,
        # so connections survive a decode failure.  Server-side application
        # errors are deterministic (bad rows stay bad) — non-retryable, with
        # the answering shard attached so failover can route around it.
        payloads = []
        for (shard_id, _), frame in zip(requests, frames):
            try:
                payloads.append(wire.decode_response(op, frame))
            except TransportError as error:
                raise TransportError(
                    f"shard {shard_id} answered {op} with an error: {error}",
                    op=op,
                    shard_id=shard_id,
                    retryable=False,
                ) from error
        self._record_round(op, requests, payloads)
        return payloads

    def _fetch_pipelined(self, op: str, requests: RequestBatch) -> list[bytes]:
        # Phase 1: write every request frame.  Multiple requests to one
        # shard keep their relative order, so responses on that connection
        # come back positionally.
        for shard_id, rows in requests:
            self._send(op, shard_id, rows)
        # Phase 2: read the response frames in request order.
        return [self._receive_frame(op, shard_id) for shard_id, _ in requests]

    def _fetch_sequential(self, op: str, requests: RequestBatch) -> list[bytes]:
        frames = []
        for shard_id, rows in requests:
            self._send(op, shard_id, rows)
            frames.append(self._receive_frame(op, shard_id))
        return frames

    def _send(self, op: str, shard_id: int, rows) -> None:
        trace = None
        if self.tracer is not None:
            ctx = self.tracer.current()
            if ctx is not None:
                trace = (ctx.trace_id, ctx.span_id)
        data = wire.frame(wire.encode_request(op, rows, trace=trace))
        conn = self._connection(op, shard_id)
        try:
            conn.sendall(data)
        except OSError as error:
            self._drop_connection(shard_id)
            raise TransportError(
                f"send to shard {shard_id} failed: {error}",
                op=op,
                shard_id=shard_id,
            ) from error
        self.wire_bytes_sent += len(data)

    def _receive_frame(self, op: str, shard_id: int) -> bytes:
        conn = self._connections.get(shard_id)
        if conn is None:
            raise TransportError(
                f"no connection to shard {shard_id} to receive from",
                op=op,
                shard_id=shard_id,
            )
        try:
            # op/shard context rides into wire.read_frame so even the raw
            # mid-frame-EOF error is attributable on its own (the re-wrap
            # below adds the same context for this call site's raises).
            payload = wire.read_frame(conn, op=op, shard_id=shard_id)
        except TransportError as error:
            self._drop_connection(shard_id)
            raise TransportError(
                f"receive from shard {shard_id} failed: {error}",
                op=op,
                shard_id=shard_id,
                retryable=error.retryable,
            ) from error
        if payload is None:
            self._drop_connection(shard_id)
            raise TransportError(
                f"shard {shard_id} closed the connection mid-round",
                op=op,
                shard_id=shard_id,
            )
        self.wire_bytes_received += len(payload) + 4
        return payload

    # ------------------------------------------------------------------ #
    def _connection(self, op: str, shard_id: int) -> socket.socket:
        if not 0 <= shard_id < len(self.addresses):
            raise TransportError(
                f"shard {shard_id} out of range [0, {len(self.addresses)})",
                op=op,
                shard_id=shard_id,
                retryable=False,
            )
        conn = self._connections.get(shard_id)
        if conn is not None:
            return conn
        host, port = self.addresses[shard_id]
        try:
            conn = socket.create_connection((host, port), timeout=self.timeout_seconds)
        except OSError as error:
            # Connection-refused during a kill window heals when the server
            # returns: explicitly retryable, with the failed op and shard
            # attached so RetryPolicy/failover act on it uniformly.
            raise TransportError(
                f"cannot connect to shard {shard_id} at {host}:{port}: {error}",
                op=op,
                shard_id=shard_id,
                retryable=True,
            ) from error
        conn.settimeout(self.timeout_seconds)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._connections[shard_id] = conn
        self.connections_opened += 1
        if shard_id in self._ever_dialed:
            self.reconnects += 1
        self._ever_dialed.add(shard_id)
        return conn

    def _drop_connection(self, shard_id: int) -> None:
        conn = self._connections.pop(shard_id, None)
        if conn is not None:
            _close_socket(conn)

    def disconnect(self) -> None:
        """Drop every live connection (the next round reconnects lazily)."""
        with self._round_lock:
            for shard_id in list(self._connections):
                self._drop_connection(shard_id)

    def close(self) -> None:
        with self._round_lock:
            self._closed = True
            for shard_id in list(self._connections):
                self._drop_connection(shard_id)


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
