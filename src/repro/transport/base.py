"""The shard transport interface: how bundle assembly fetches remote rows.

:class:`~repro.shard.store.ShardedGraphStore` assembles cross-shard
k-hop :class:`~repro.graph.sampling.SupportBundle`\\ s out of exactly four
fetch primitives, extracted here as :class:`ShardTransport` operations:

``frontier_columns``
    The concatenated global neighbour ids of a set of owned rows — the BFS
    frontier expansion of :meth:`ShardedGraphStore.k_hop_neighborhood`.
``adjacency_rows``
    The normalized-adjacency rows of a set of owned rows, as per-row lengths
    plus flat global column ids and values — the substrate of local-CSR
    stitching.
``feature_rows``
    The hop-0 feature rows of a set of owned rows.
``degree_rows``
    The ``d_i + 1`` degrees of a set of owned rows (the stationary slice).

Every call is a **round**: a list of ``(shard_id, rows)`` requests answered
positionally.  A round is the transport's unit of pipelining — the socket
backend writes every request of a round before reading the first response,
so one cross-shard hop costs one round trip instead of one per shard.

All responses are expressed in *global* ids and deployment dtypes, so the
store's assembly code is transport-agnostic and — because every backend
returns the same arrays — bundles are bit-identical across backends.

Backends
--------
:class:`~repro.transport.local.LocalTransport`
    Zero-copy views over in-process :class:`~repro.shard.store.GraphShard`
    blocks (the pre-transport behavior).
:class:`~repro.transport.socket.SocketTransport`
    Length-prefixed binary RPC over TCP with per-shard connection reuse and
    cross-hop request pipelining, served by
    :class:`~repro.transport.socket.ShardServer`.
:class:`~repro.transport.fault.FaultInjectingTransport`
    Wraps any backend with scripted drops, latency, reordering and
    disconnects — the test harness of the fault model.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Operation names, also used as wire opcodes (see :mod:`.wire`).
OP_FRONTIER = "frontier_columns"
OP_ADJACENCY = "adjacency_rows"
OP_FEATURES = "feature_rows"
OP_DEGREES = "degree_rows"

ALL_OPS = (OP_FRONTIER, OP_ADJACENCY, OP_FEATURES, OP_DEGREES)

#: One round's worth of requests: ``(shard_id, local_rows)`` pairs.
RequestBatch = Sequence[tuple[int, np.ndarray]]


@dataclass(frozen=True)
class AdjacencyRows:
    """One shard's answer to an ``adjacency_rows`` request.

    ``lengths[i]`` entries of row ``i`` live at the matching flat positions
    of ``columns`` (global column ids, ascending within each row — the same
    entry order the global CSR stores) and ``data`` (values in the
    deployment dtype).
    """

    lengths: np.ndarray
    columns: np.ndarray
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.lengths.nbytes + self.columns.nbytes + self.data.nbytes)


def payload_nbytes(payload) -> int:
    """Logical byte size of a response payload (any op)."""
    if isinstance(payload, AdjacencyRows):
        return payload.nbytes
    return int(np.asarray(payload).nbytes)


@dataclass
class TransportStats:
    """Counters every backend keeps: rounds, per-op requests, bytes moved.

    ``request_bytes`` / ``response_bytes`` count the *logical* payloads (row
    ids out, arrays back).  The socket backend additionally reports framed
    wire bytes (headers included) via its own ``wire_bytes_*`` counters.

    ``retries`` / ``failovers`` / ``health_transitions`` stay zero on plain
    backends; :class:`~repro.transport.replica.ReplicatedTransport` counts
    its retry-policy re-attempts, its mid-round replica switches, and every
    replica health flip (healthy ↔ unhealthy) there.
    """

    rounds: int = 0
    requests: dict[str, int] = field(
        default_factory=lambda: {op: 0 for op in ALL_OPS}
    )
    request_bytes: int = 0
    response_bytes: int = 0
    retries: int = 0
    failovers: int = 0
    health_transitions: int = 0

    def record_round(
        self, op: str, num_requests: int, request_bytes: int, response_bytes: int
    ) -> None:
        self.rounds += 1
        self.requests[op] = self.requests.get(op, 0) + num_requests
        self.request_bytes += request_bytes
        self.response_bytes += response_bytes

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "requests": dict(self.requests),
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
            "total_bytes": self.request_bytes + self.response_bytes,
            "retries": self.retries,
            "failovers": self.failovers,
            "health_transitions": self.health_transitions,
        }


class ShardTransport(ABC):
    """Abstract fetch surface between bundle assembly and the shard blocks.

    Subclasses implement :meth:`fetch` — one round of positional
    ``(shard_id, rows)`` requests for one operation — and the four public
    methods simply name the operations.  Implementations must be safe to
    call from multiple serving threads (take a lock if the underlying
    channel is stateful).
    """

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._stats_lock = threading.Lock()
        #: Optional :class:`~repro.obs.Tracer`.  Backends that can enrich a
        #: trace (the socket client propagating ids over the wire, the
        #: replicated transport marking retries/failovers) read the current
        #: thread-local round context from it; ``None`` (default) costs one
        #: attribute check per round.
        self.tracer = None

    def use_tracer(self, tracer) -> "ShardTransport":
        """Attach a tracer (wrappers propagate it to their inner backends)."""
        self.tracer = tracer
        return self

    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def num_shards(self) -> int:
        """How many shards this transport can reach."""

    @abstractmethod
    def fetch(self, op: str, requests: RequestBatch) -> list:
        """Answer one round of requests, positionally.

        Raises :class:`~repro.exceptions.TransportError` when a shard cannot
        be reached or a response cannot be read; a failed round leaves no
        partial state behind (the caller retries the whole round or fails).
        """

    def close(self) -> None:
        """Release any connections; further fetches may fail."""

    # ------------------------------------------------------------------ #
    # The four named operations of the store's fetch surface
    # ------------------------------------------------------------------ #
    def frontier_columns(self, requests: RequestBatch) -> list[np.ndarray]:
        """Concatenated global neighbour ids of each request's rows."""
        return self.fetch(OP_FRONTIER, requests)

    def adjacency_rows(self, requests: RequestBatch) -> list[AdjacencyRows]:
        """Normalized-adjacency rows (lengths + global columns + values)."""
        return self.fetch(OP_ADJACENCY, requests)

    def feature_rows(self, requests: RequestBatch) -> list[np.ndarray]:
        """Feature rows of each request's rows, deployment dtype."""
        return self.fetch(OP_FEATURES, requests)

    def degree_rows(self, requests: RequestBatch) -> list[np.ndarray]:
        """``d_i + 1`` (float64) of each request's rows."""
        return self.fetch(OP_DEGREES, requests)

    # ------------------------------------------------------------------ #
    def _record_round(
        self, op: str, requests: RequestBatch, payloads: Sequence
    ) -> None:
        request_bytes = sum(np.asarray(rows).nbytes for _, rows in requests)
        response_bytes = sum(payload_nbytes(p) for p in payloads)
        with self._stats_lock:
            self.stats.record_round(op, len(requests), request_bytes, response_bytes)

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def answer_from_shard(shard, op: str, rows: np.ndarray):
    """Serve one request against an in-process ``GraphShard``.

    This is the single source of truth for what each operation returns —
    :class:`~repro.transport.local.LocalTransport` calls it directly and
    :class:`~repro.transport.socket.ShardServer` calls it behind the wire,
    which is how every backend stays bit-identical.
    """
    from ..graph.kernels import _flat_nnz_positions

    rows = np.asarray(rows, dtype=np.int64)
    if rows.size and (rows.min() < 0 or rows.max() >= shard.num_owned):
        raise IndexError(
            f"row ids out of range for shard {shard.shard_id} "
            f"({shard.num_owned} owned rows)"
        )
    if op == OP_FRONTIER:
        flat, _ = _flat_nnz_positions(shard.adj_indptr, rows)
        return shard.col_global[shard.adj_indices[flat]]
    if op == OP_ADJACENCY:
        flat, seg_ends = _flat_nnz_positions(shard.nrm_indptr, rows)
        lengths = np.diff(np.concatenate(([0], seg_ends)))
        return AdjacencyRows(
            lengths=lengths,
            columns=shard.col_global[shard.nrm_indices[flat]],
            data=shard.nrm_data[flat],
        )
    if op == OP_FEATURES:
        return shard.features[rows]
    if op == OP_DEGREES:
        return shard.degrees_with_loops[rows]
    raise ValueError(f"unknown transport operation {op!r}")
