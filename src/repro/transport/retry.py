"""Retry policy for transport rounds: bounded, capped, deterministically jittered.

A failed fetch round is worth retrying only when the transport says so
(:attr:`~repro.exceptions.TransportError.retryable`) and only a bounded
number of times — an unbounded retry loop against a dead shard is a hang
with extra steps.  :class:`RetryPolicy` is the pure description of that
budget: up to ``max_attempts`` tries, exponential backoff starting at
``backoff_base_seconds`` and capped at ``backoff_cap_seconds``, each delay
multiplied by a jitter factor drawn from a **seeded** generator so the exact
delay sequence is reproducible run to run (the fuzz suite depends on it).

All waiting goes through an injectable :class:`~repro.serving.clock.Clock`:
production backs off on the monotonic clock, tests pass a
:class:`~repro.serving.clock.FakeClock` and the whole retry ladder runs in
virtual time — no real sleeps anywhere in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Iterator, TypeVar

from ..exceptions import ConfigurationError, TransportError
from ..serving.clock import MONOTONIC_CLOCK, Clock

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a retryable transport failure, and how fast.

    Attributes
    ----------
    max_attempts:
        Total tries per round, first attempt included.  ``1`` disables
        retries (every retryable failure is surfaced immediately).
    backoff_base_seconds:
        Delay before the first retry; each further retry doubles it.
    backoff_cap_seconds:
        Upper bound on any single delay, jitter included — the exponential
        ladder flattens here instead of growing without bound.
    jitter_fraction:
        Each delay is scaled by a factor drawn uniformly from
        ``[1 - jitter_fraction, 1 + jitter_fraction]``, de-synchronising
        retry storms across clients.  ``0`` disables jitter.
    seed:
        Seed of the jitter generator.  :meth:`delays` re-seeds on every
        call, so the same policy always produces the same delay sequence —
        deterministic under test, which is the point of injectable clocks.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.005
    backoff_cap_seconds: float = 0.05
    jitter_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.backoff_base_seconds < 0:
            raise ConfigurationError(
                f"backoff_base_seconds must be non-negative, got "
                f"{self.backoff_base_seconds}"
            )
        if self.backoff_cap_seconds < self.backoff_base_seconds:
            raise ConfigurationError(
                f"backoff_cap_seconds ({self.backoff_cap_seconds}) must be >= "
                f"backoff_base_seconds ({self.backoff_base_seconds})"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"jitter_fraction must lie in [0, 1), got {self.jitter_fraction}"
            )

    def delays(self) -> Iterator[float]:
        """The (deterministic) backoff delay before each retry, in order.

        Yields ``max_attempts - 1`` values: attempt ``i`` (0-based) failing
        retryably waits ``delays()[i]`` seconds before attempt ``i + 1``.
        """
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            base = min(
                self.backoff_base_seconds * (2.0**attempt),
                self.backoff_cap_seconds,
            )
            jitter = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
            yield min(base * jitter, self.backoff_cap_seconds)

    def with_updates(self, **kwargs) -> "RetryPolicy":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: The retries-off policy: every retryable failure surfaces immediately.
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(
    policy: RetryPolicy,
    clock: Clock | None,
    fn: Callable[[], T],
    *,
    on_retry: Callable[[TransportError, float], None] | None = None,
) -> T:
    """Run ``fn`` under ``policy``: retry retryable :class:`TransportError`\\ s.

    Non-retryable errors and non-transport exceptions propagate immediately;
    a retryable error on the final attempt propagates as-is (the caller
    decides whether to fail over).  ``on_retry(error, delay)`` fires before
    each backoff wait — the hook the replicated transport uses to count
    retries.
    """
    clock = clock if clock is not None else MONOTONIC_CLOCK
    delays = policy.delays()
    while True:
        try:
            return fn()
        except TransportError as error:
            if not error.retryable:
                raise
            delay = next(delays, None)
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(error, delay)
            clock.sleep(delay)
