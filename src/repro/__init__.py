"""Reproduction of "Accelerating Scalable Graph Neural Network Inference with
Node-Adaptive Propagation" (ICDE 2024).

The top-level namespace re-exports the pieces most users need: the synthetic
dataset loader, the scalable-GNN backbones, and the :class:`~repro.core.NAI`
pipeline with its configuration objects.
"""

from .core import (
    NAI,
    load_pipeline,
    save_pipeline,
    DistanceNAP,
    DistillationConfig,
    GateNAP,
    GateTrainingConfig,
    MonitorConfig,
    InferenceResult,
    NAIConfig,
    NAIPredictor,
    ServingConfig,
    ShardConfig,
    TrainingConfig,
)
from .datasets import NodeClassificationDataset, available_datasets, load_dataset
from .graph import CSRGraph
from .models import GAMLP, S2GC, SGC, SIGN, available_backbones, make_backbone
from .serving import InferenceServer
from .shard import ShardRouter, ShardedPredictor

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "DistanceNAP",
    "DistillationConfig",
    "GAMLP",
    "GateNAP",
    "GateTrainingConfig",
    "MonitorConfig",
    "InferenceResult",
    "InferenceServer",
    "NAI",
    "NAIConfig",
    "NAIPredictor",
    "NodeClassificationDataset",
    "S2GC",
    "SGC",
    "SIGN",
    "ServingConfig",
    "ShardConfig",
    "ShardRouter",
    "ShardedPredictor",
    "TrainingConfig",
    "available_backbones",
    "available_datasets",
    "load_dataset",
    "load_pipeline",
    "make_backbone",
    "save_pipeline",
]
