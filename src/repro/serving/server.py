"""The online inference server: queue → micro-batcher → worker pool → stats.

:class:`InferenceServer` turns a prepared :class:`~repro.core.NAIPredictor`
into a service.  Callers :meth:`~InferenceServer.submit` node-id arrays and
receive a request handle whose :meth:`~repro.serving.queue.InferenceRequest.
result` blocks for the :class:`~repro.serving.queue.ServingResponse`.
Internally a dispatcher thread drains the bounded request queue through the
dynamic micro-batcher, consults the supporting-subgraph cache, and fans the
resulting micro-batches out across the worker pool; completions are split
back into per-request responses and folded into the serving statistics.

Served predictions are bit-identical to ``NAIPredictor.predict``: batching
changes *which* supporting subgraph is propagated, never the per-node
result, and cache replays skip only MAC-free sampling work.

    >>> from repro.core import ServingConfig
    >>> from repro.serving import InferenceServer
    >>> with InferenceServer(predictor, ServingConfig()) as server:  # doctest: +SKIP
    ...     handles = [server.submit(ids) for ids in request_stream]
    ...     responses = [h.result() for h in handles]
    ...     print(server.stats().throughput_nodes_per_second)
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Sequence

import numpy as np

from ..core.config import ServingConfig
from ..core.inference import NAIPredictor
from ..exceptions import ConfigurationError, ServingError
from ..graph.sampling import canonical_order, slice_support_bundle
from .batcher import MicroBatch, MicroBatcher
from .cache import CachedResult, ResultCache, SubgraphCache
from .clock import MONOTONIC_CLOCK, Clock
from .controller import BatchController, build_controller
from .prefetch import BusyTracker, PrefetchPipeline, PrefetchTask
from .queue import NEW_TRACE, InferenceRequest, RequestQueue, ServingResponse, SubmitOptions
from .stats import ServingStats, ServingStatsSnapshot
from .wave import attribute_wave_macs, split_timings
from .worker import WorkerPool, WorkItem, WorkOutput

#: Default ``trace_parent``: "no parent given — start a sampled root trace".
#: Distinct from an *explicit* ``None``, which means "this request was
#: sampled out upstream (the shard router); do not trace it here either".
#: Alias of :data:`repro.serving.queue.NEW_TRACE` (the canonical sentinel,
#: shared with :class:`~repro.serving.queue.SubmitOptions`); kept under the
#: old private name for existing imports.
_NEW_TRACE = NEW_TRACE


class InferenceServer:
    """Request queue + dynamic micro-batching + worker pool + subgraph cache."""

    def __init__(
        self,
        predictor: NAIPredictor,
        config: ServingConfig | None = None,
        *,
        clock: Clock | None = None,
        controller: BatchController | None = None,
        tracer=None,
    ) -> None:
        if not predictor.prepared:
            raise ServingError(
                "prepare the predictor (NAIPredictor.prepare) before serving it"
            )
        self.predictor = predictor
        self.config = config if config is not None else ServingConfig()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        #: Optional :class:`~repro.obs.Tracer`.  ``None`` (the default) is
        #: the zero-cost path: every tracing site guards on this attribute,
        #: so no span, context, or closure is ever allocated per request.
        self.tracer = tracer
        self.queue = RequestQueue(
            self.config.queue_capacity, self.config.overflow_policy,
            clock=self.clock,
        )
        self.queue.on_shed = self._on_request_shed
        #: The batching policy (``config.batch_policy`` unless an explicit
        #: controller instance is injected — tests and the shard router use
        #: that to share or pre-wire policies).
        self.controller = (
            controller if controller is not None else build_controller(self.config)
        )
        self.batcher = MicroBatcher(
            self.queue, controller=self.controller, clock=self.clock
        )
        # Bundle reuse needs the fused engine (the reference engine resamples
        # per depth) and in-process workers (bundles are not shipped across
        # the process boundary).
        self.cache: SubgraphCache | None = None
        if (
            self.config.cache_capacity > 0
            and self.config.backend == "thread"
            and predictor.config.engine == "fused"
        ):
            self.cache = SubgraphCache(self.config.cache_capacity)
        # Gate prefetch before any thread machinery spins up: the pipeline
        # is a cache-fill path, so it needs the cache's own preconditions.
        if self.config.prefetch_depth > 0 and self.cache is None:
            raise ConfigurationError(
                "prefetch_depth > 0 requires the supporting-subgraph cache: "
                "backend='thread', the fused engine and cache_capacity > 0"
            )
        # Wave fusion runs one union sweep for several in-flight
        # micro-batches.  The MAC-attribution replay walks the executed
        # bundle, so waves need the fused engine (the reference engine
        # resamples per depth — there is no single union bundle to replay).
        self._wave_width = self.config.wave_width
        if self._wave_width > 1 and predictor.config.engine != "fused":
            raise ConfigurationError(
                "wave_width > 1 requires the fused engine "
                "(NAIConfig.engine='fused')"
            )
        if self.config.cache_subset_lookups and self.cache is None:
            raise ConfigurationError(
                "cache_subset_lookups requires the supporting-subgraph cache: "
                "backend='thread', the fused engine and cache_capacity > 0"
            )
        # The opt-in result cache replays recorded per-node outputs for exact
        # canonical node-set repeats; it exchanges plain arrays only, so it
        # works with every backend and engine.
        self.result_cache: ResultCache | None = None
        if self.config.result_cache_capacity > 0:
            self.result_cache = ResultCache(self.config.result_cache_capacity)
        self.pool = WorkerPool(
            predictor,
            num_workers=self.config.num_workers,
            backend=self.config.backend,
            tracer=tracer if self.config.backend == "thread" else None,
        )
        # Dispatcher-owned engine, used for bundle building on cache misses
        # (build_support touches no propagation buffers) and, in wave mode,
        # as the source of the policy/classifier state the attribution
        # replay reads.
        self._sampler = (
            predictor.make_engine()
            if self.cache is not None or self._wave_width > 1
            else None
        )
        self._stats = ServingStats(self.config.latency_sample_cap, clock=self.clock)
        # Asynchronous prefetch: cache misses are fetched by background
        # fetcher threads so batch N+1's transport rounds overlap batch N's
        # compute.  Needs the subgraph cache (same preconditions), because
        # the pipeline *is* a cache-fill path.
        self._busy: BusyTracker | None = None
        self._prefetch: PrefetchPipeline | None = None
        if self.config.prefetch_depth > 0:
            self._busy = BusyTracker(self.clock)
            self._prefetch = PrefetchPipeline(
                make_engine=predictor.make_engine,
                execute=self._prefetch_execute,
                cancel=self._prefetch_cancel,
                depth=self.config.prefetch_depth,
            )
        self._request_ids = itertools.count()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)
        self._accepting = True
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nai-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        node_ids: np.ndarray,
        options: SubmitOptions | None = None,
        *,
        timeout: float | None = None,
        trace_parent=NEW_TRACE,
        tenant: str | None = None,
    ) -> InferenceRequest:
        """Enqueue one request; returns its handle immediately.

        Per-request options travel in one :class:`~repro.serving.queue.
        SubmitOptions` — the same object :meth:`repro.shard.ShardRouter.
        submit` accepts, so call sites survive a single-server-to-fleet
        swap unchanged.  The legacy ``timeout=``/``trace_parent=`` (and
        ``tenant=``) keywords still work when no ``options`` is given;
        mixing both surfaces raises.

        Raises :class:`~repro.exceptions.BackpressureError` under the
        ``"reject"`` overflow policy (or after ``options.timeout`` under
        ``"block"``) when the queue is full.  ``trace_parent`` nests the
        request's trace under an existing context (the shard router's
        ``route`` span) instead of starting a fresh sampled trace; pass an
        explicit ``None`` to mark the request as sampled out upstream.
        """
        if options is None:
            options = SubmitOptions(
                timeout=timeout, trace_parent=trace_parent, tenant=tenant
            )
        elif (
            timeout is not None
            or trace_parent is not NEW_TRACE
            or tenant is not None
        ):
            raise ConfigurationError(
                "pass either a SubmitOptions or the legacy "
                "timeout/trace_parent/tenant keywords, not both"
            )
        if not self._accepting:
            raise ServingError("the server is closed to new requests")
        trace = None
        if self.tracer is not None:
            trace = (
                self.tracer.new_trace()
                if options.trace_parent is NEW_TRACE
                else self.tracer.child(options.trace_parent)
            )
        request = InferenceRequest(
            next(self._request_ids),
            node_ids,
            enqueued_at=self.clock.now(),
            trace=trace,
            tenant=options.tenant,
        )
        self._stats.mark_submission()
        with self._inflight_lock:
            self._inflight += 1
        try:
            self.queue.put(request, timeout=options.timeout)
        except BaseException:
            with self._inflight_lock:
                self._inflight -= 1
                self._idle.notify_all()
            raise
        return request

    def predict_many(
        self,
        batches: Iterable[np.ndarray],
        *,
        timeout: float | None = None,
    ) -> list[ServingResponse]:
        """Submit every batch, then gather the responses in submission order.

        ``timeout`` bounds each step: the submit (a full queue under the
        ``"block"`` policy raises after waiting this long) and each result.
        """
        handles = [self.submit(batch, timeout=timeout) for batch in batches]
        return [handle.result(timeout=timeout) for handle in handles]

    def drain(self, timeout: float | None = None) -> None:
        """Block until every accepted request has been answered."""
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._inflight_lock:
            while self._inflight > 0:
                wait = None if deadline is None else deadline - self.clock.now()
                if wait is not None and wait <= 0:
                    raise ServingError(
                        f"{self._inflight} requests still in flight after {timeout}s"
                    )
                self.clock.wait_on(self._idle, wait)

    def stats(self) -> ServingStatsSnapshot:
        """Current throughput/latency/cache/queue statistics."""
        # One consistent counter reading per cache (hits/misses/entries move
        # together under the cache lock) instead of racy piecewise reads.
        cache = self.cache.counters() if self.cache else None
        results = self.result_cache.counters() if self.result_cache else None
        return self._stats.snapshot(
            queue_depth=self.queue.depth,
            queue_max_depth=self.queue.max_depth,
            requests_rejected=self.queue.rejected,
            requests_shed=self.queue.shed,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            cache_entries=cache.entries if cache else 0,
            cache_subset_hits=cache.subset_hits if cache else 0,
            result_cache_hits=results.hits if results else 0,
            result_cache_misses=results.misses if results else 0,
            result_cache_entries=results.entries if results else 0,
            batch_policy=self.controller.name,
            controller_adjustments=self.controller.adjustments,
        )

    def interval_latency_samples(self) -> tuple[float, ...]:
        """Raw request latencies of the current interval window.

        Non-destructive; :meth:`interval_stats` (its default ``reset``)
        consumes the interval.  See
        :meth:`~repro.serving.stats.ServingStats.interval_snapshot`.
        """
        return self._stats.interval_latency_samples()

    def interval_stats(self, *, reset: bool = True) -> ServingStatsSnapshot:
        """Statistics since the last interval reset (then reset by default).

        Counters and summaries cover only the interval window; the
        queue/cache gauges are the same instantaneous levels as
        :meth:`stats`.
        """
        cache = self.cache.counters() if self.cache else None
        results = self.result_cache.counters() if self.result_cache else None
        return self._stats.interval_snapshot(
            reset=reset,
            queue_depth=self.queue.depth,
            queue_max_depth=self.queue.max_depth,
            requests_rejected=self.queue.rejected,
            requests_shed=self.queue.shed,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            cache_entries=cache.entries if cache else 0,
            result_cache_hits=results.hits if results else 0,
            result_cache_misses=results.misses if results else 0,
            result_cache_entries=results.entries if results else 0,
            batch_policy=self.controller.name,
            controller_adjustments=self.controller.adjustments,
        )

    def close(self, *, abort: bool = False) -> None:
        """Serve everything already accepted, then stop all machinery.

        ``abort=True`` skips the drain: requests still queued — including
        micro-batches whose support fetch is waiting in the prefetch
        pipeline — are *failed* with :class:`~repro.exceptions.ServingError`
        instead of served.  Batches already fetching or computing complete
        normally, so every accepted request is answered one way or the
        other; nothing strands.
        """
        if self._closed:
            return
        self._accepting = False
        try:
            if not abort:
                self.drain()
        finally:
            self._closed = True
            self.queue.close()
            # A submit racing close() can slip into the queue after drain()
            # returned; drain_pending fails it *and* we release its in-flight
            # slot so a later drain() cannot wait on it forever.
            stranded = self.queue.drain_pending(
                ServingError("server shut down before dispatch")
            )
            if stranded:
                with self._inflight_lock:
                    self._inflight -= len(stranded)
                    if self._inflight <= 0:
                        self._idle.notify_all()
            self._dispatcher.join()
            # Stop the prefetch pipeline after the dispatcher (its last
            # submitter) and before the pool (its downstream): in-flight
            # fetches finish and submit, queued tasks are cancelled through
            # _fail_micro_batch, which releases their in-flight slots.
            if self._prefetch is not None:
                cancelled = self._prefetch.stop(
                    ServingError("server shut down before prefetch dispatch")
                )
                if cancelled:
                    self._stats.record_prefetch_cancelled(cancelled)
            self.pool.shutdown()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _on_request_shed(self, request: InferenceRequest) -> None:
        """Release the in-flight slot of a request failed by load shedding."""
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while not (self._closed and self.queue.depth == 0):
            micro_batch = self.batcher.next_batch(poll_timeout=0.02)
            if micro_batch is None:
                if self.queue.is_closed:
                    break
                continue
            if self._wave_width <= 1:
                self._dispatch_one(micro_batch)
                continue
            # Wave gate: fuse up to wave_width micro-batches that are
            # *already ready* — the zero poll never delays the first
            # member, so an idle server behaves exactly like wave_width=1;
            # only genuine concurrency (a backed-up queue) widens waves.
            members = [micro_batch]
            while len(members) < self._wave_width:
                extra = self.batcher.next_batch(poll_timeout=0.0)
                if extra is None:
                    break
                members.append(extra)
            if len(members) == 1:
                self._dispatch_one(micro_batch)
            else:
                self._dispatch_wave(members)

    def _dispatch_one(self, micro_batch: MicroBatch) -> None:
        """Resolve and dispatch a single micro-batch (the non-wave path).

        Resolve the sampling products here, in the dispatcher: a miss
        is built and inserted *before* dispatch, so identical batches
        already in flight behind this one hit deterministically, and
        sampling pipelines with the workers' propagation compute.
        Any failure (e.g. out-of-range node ids surfacing in the BFS)
        fails this micro-batch's requests only — the dispatcher must
        outlive every malformed request.
        """
        depth = self.predictor.config.t_max
        try:
            # Tracing: batch-level spans hang off the first traced
            # member (the "primary") — one batch tree per micro-batch,
            # not one per request.  ``primary is None`` (tracing off or
            # nothing sampled) keeps every site below dormant.
            primary = None
            if self.tracer is not None:
                primary = next(
                    (r.trace for r in micro_batch.requests if r.trace is not None),
                    None,
                )
                if primary is not None and micro_batch.started_at is not None:
                    self.tracer.emit_under(
                        "batch.coalesce",
                        primary,
                        micro_batch.started_at,
                        micro_batch.formed_at,
                        batch_id=micro_batch.batch_id,
                        num_requests=micro_batch.num_requests,
                        num_nodes=micro_batch.num_nodes,
                    )
            # Both caches key on the canonical (sorted) node multiset, so
            # permuted repeats of a node-set share one entry; ``rank``
            # rebases canonical-order artefacts back to batch order.
            sorted_ids = rank = None
            if self.cache is not None or self.result_cache is not None:
                sorted_ids, rank = canonical_order(micro_batch.node_ids)

            result_key = canonical_idx = None
            if self.result_cache is not None:
                assert sorted_ids is not None and rank is not None
                result_key = self.result_cache.key_for(sorted_ids, depth)
                recorded = self.result_cache.get(result_key)
                if recorded is not None:
                    self._replay_micro_batch(micro_batch, rank, recorded)
                    return
                # Inverse of ``rank`` by scatter (no second sort): the
                # completion path stores the result in canonical order.
                canonical_idx = np.empty_like(rank)
                canonical_idx[rank] = np.arange(rank.shape[0], dtype=np.int64)

            batch_ctx = None
            if primary is not None:
                batch_ctx = self.tracer.child(primary)

            bundle = None
            cache_hit = False
            bundle_is_fresh = False
            if self.cache is not None:
                assert sorted_ids is not None and rank is not None
                key = self.cache.key_for(sorted_ids, depth)
                bundle = self.cache.get(key)
                cache_hit = bundle is not None
                if bundle is None and self._prefetch is not None:
                    # Hand the fetch to the pipeline and move straight on
                    # to coalescing the next micro-batch: its transport
                    # rounds overlap the pool's compute (and each other,
                    # at depth > 1).  The fetcher finishes the batch.
                    self._stats.record_prefetch_issued()
                    self._prefetch.submit(
                        PrefetchTask(
                            micro_batch=micro_batch,
                            sorted_ids=sorted_ids,
                            rank=rank,
                            cache_key=key,
                            result_key=result_key,
                            canonical_idx=canonical_idx,
                            batch_ctx=batch_ctx,
                        )
                    )
                    return
                if bundle is None:
                    # Build (and insert) the canonical-order bundle; the
                    # actual batch order is restored by rebasing below.
                    bundle = self._build_bundle(
                        micro_batch, sorted_ids, batch_ctx, self._sampler
                    )
                    self.cache.put(key, bundle)
                    bundle_is_fresh = True
                if not np.array_equal(sorted_ids, micro_batch.node_ids):
                    bundle = bundle.with_target_order(rank)
            self._submit_work(
                micro_batch, bundle, cache_hit, bundle_is_fresh,
                result_key, canonical_idx, batch_ctx,
            )
        except BaseException as error:  # noqa: BLE001 - forwarded per request
            self._fail_micro_batch(micro_batch, error)

    def _dispatch_wave(self, members: "list[MicroBatch]") -> None:
        """Fuse ready micro-batches into one union sweep (the wave path).

        The union batch is the members' node ids concatenated in member
        order; one bundle build plus one engine sweep serve every member,
        and the completion path scatters per-member result slices back
        and splits the sweep's MACs exactly
        (:func:`~repro.serving.wave.attribute_wave_macs`).  A failure
        before dispatch fails every member — the :meth:`_dispatch_one`
        contract, wave-wide.
        """
        depth = self.predictor.config.t_max
        try:
            union_ids = np.concatenate([mb.node_ids for mb in members])
            sizes = np.asarray([mb.num_nodes for mb in members], dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            union_start = self.clock.now()
            primary = None
            if self.tracer is not None:
                # The wave's batch tree hangs off the first traced request
                # of any member; per-member coalesce spans keep the trace
                # comparable to the non-wave path.
                primary = next(
                    (
                        r.trace
                        for mb in members
                        for r in mb.requests
                        if r.trace is not None
                    ),
                    None,
                )
                if primary is not None:
                    for mb in members:
                        if mb.started_at is not None:
                            self.tracer.emit_under(
                                "batch.coalesce",
                                primary,
                                mb.started_at,
                                mb.formed_at,
                                batch_id=mb.batch_id,
                                num_requests=mb.num_requests,
                                num_nodes=mb.num_nodes,
                            )
            batch_ctx = None
            if primary is not None:
                batch_ctx = self.tracer.child(primary)

            sorted_ids, rank = canonical_order(union_ids)
            bundle = None
            cache_hit = False
            bundle_is_fresh = False
            if self.cache is not None:
                key = self.cache.key_for(sorted_ids, depth)
                bundle = self.cache.get(key)
                cache_hit = bundle is not None
                if bundle is None and self.config.cache_subset_lookups:
                    match = self.cache.find_superset(sorted_ids, depth)
                    if match is not None:
                        # Slice this union's bundle out of a cached
                        # superset bundle: bit-identical to a fresh build
                        # (a subset's k-hop support lies inside the
                        # superset's) at a fraction of the cost.  Costed —
                        # and cached under the exact key — as a build.
                        bundle = slice_support_bundle(
                            match[1], sorted_ids, depth
                        )
                if bundle is None:
                    bundle = self._build_bundle(
                        members[0], sorted_ids, batch_ctx, self._sampler
                    )
                if not cache_hit:
                    self.cache.put(key, bundle)
                    bundle_is_fresh = True
            else:
                bundle = self._build_bundle(
                    members[0], sorted_ids, batch_ctx, self._sampler
                )
                bundle_is_fresh = True
            if not np.array_equal(sorted_ids, union_ids):
                bundle = bundle.with_target_order(rank)
            if batch_ctx is not None:
                self.tracer.emit_under(
                    "wave.union",
                    batch_ctx,
                    union_start,
                    self.clock.now(),
                    batch_id=members[0].batch_id,
                    wave_width=len(members),
                    num_nodes=int(union_ids.shape[0]),
                    cache_hit=cache_hit,
                )
            self._submit_wave(
                members, offsets, union_ids, bundle, cache_hit,
                bundle_is_fresh, batch_ctx,
            )
        except BaseException as error:  # noqa: BLE001 - forwarded per request
            for mb in members:
                self._fail_micro_batch(mb, error)

    def _submit_wave(
        self,
        members: "list[MicroBatch]",
        offsets: np.ndarray,
        union_ids: np.ndarray,
        bundle,
        cache_hit: bool,
        bundle_is_fresh: bool,
        batch_ctx,
    ) -> None:
        """Dispatch a resolved wave to the pool as one union work item."""
        compute_ctx = None
        if batch_ctx is not None:
            compute_ctx = self.tracer.child(batch_ctx)
        dispatched_at = self.clock.now()
        queue_waits = [
            [dispatched_at - request.enqueued_at for request in mb.requests]
            for mb in members
        ]
        if self.tracer is not None:
            for mb in members:
                for request in mb.requests:
                    if request.trace is not None:
                        self.tracer.emit_under(
                            "queue.wait",
                            request.trace,
                            request.enqueued_at,
                            dispatched_at,
                            batch_id=mb.batch_id,
                        )
        self.pool.submit(
            WorkItem(
                batch_id=members[0].batch_id,
                node_ids=union_ids,
                bundle=bundle,
                bundle_is_fresh=bundle_is_fresh,
                callback=lambda output, ms=members, offs=offsets,
                waits=queue_waits, hit=cache_hit, b=bundle,
                sent=dispatched_at, bctx=batch_ctx:
                self._on_wave_done(ms, offs, waits, hit, output, b, sent, bctx),
                trace=compute_ctx,
            )
        )

    def _on_wave_done(
        self,
        members: "list[MicroBatch]",
        offsets: np.ndarray,
        queue_waits: "list[list[float]]",
        cache_hit: bool,
        output: WorkOutput,
        bundle,
        dispatched_at: float,
        batch_ctx,
    ) -> None:
        """Scatter a union sweep back into per-member, per-request responses."""
        num_requests = sum(mb.num_requests for mb in members)
        try:
            result = output.result
            error = output.error
            attribution = None
            if error is None and result is not None:
                try:
                    # Replay the union sweep's control flow and split its
                    # engine-reported MACs exactly across the members.
                    # ``bundle`` is the executed (batch-order) bundle the
                    # replay walks; a reconciliation mismatch raises and
                    # fails the wave rather than shipping wrong accounting.
                    sampler = self._sampler
                    attribution = attribute_wave_macs(
                        bundle,
                        offsets,
                        result,
                        policy=sampler.policy,
                        classifiers=sampler.classifiers,
                        config=sampler.config,
                        stationary_num_nodes=sampler.stationary.num_nodes,
                    )
                except BaseException as attribution_error:  # noqa: BLE001
                    error = attribution_error
            if error is not None or result is None or attribution is None:
                if error is None:
                    error = ServingError(
                        f"wave of {len(members)} micro-batches produced "
                        "no result"
                    )
                failed_at = self.clock.now()
                for mb in members:
                    for request in mb.requests:
                        request._fail(error)
                    if self.tracer is not None:
                        for request in mb.requests:
                            if request.trace is not None:
                                self.tracer.emit(
                                    "request",
                                    request.trace,
                                    request.enqueued_at,
                                    failed_at,
                                    request_id=request.request_id,
                                    batch_id=mb.batch_id,
                                    status="failed",
                                    error=str(error),
                                )
                self._stats.record_failure(num_requests)
                return
            completed_at = self.clock.now()
            # One controller cost sample for the union — the service time
            # the pool actually spent, not wave_width copies of it.
            self.controller.observe_batch(
                num_nodes=int(offsets[-1]),
                num_requests=num_requests,
                service_seconds=completed_at - dispatched_at,
                queue_depth=self.queue.depth,
            )
            member_timings = split_timings(
                result.timings,
                [macs.total for macs in attribution.member_macs],
            )
            wave_width = len(members)
            for k, mb in enumerate(members):
                base = int(offsets[k])
                member_macs = attribution.member_macs[k]
                latencies = []
                for index, request in enumerate(mb.requests):
                    inner = mb.request_slice(index)
                    rows = slice(base + inner.start, base + inner.stop)
                    latency = completed_at - request.enqueued_at
                    latencies.append(latency)
                    request._fulfill(
                        ServingResponse(
                            request_id=request.request_id,
                            node_ids=request.node_ids,
                            predictions=result.predictions[rows],
                            depths=result.depths[rows],
                            latency_seconds=latency,
                            queue_seconds=queue_waits[k][index],
                            cache_hit=cache_hit,
                            worker_id=output.worker_id,
                            batch_id=mb.batch_id,
                            batch_num_nodes=mb.num_nodes,
                            batch_num_requests=mb.num_requests,
                            batch_macs=member_macs,
                            batch_timings=member_timings[k],
                            tenant=request.tenant,
                            wave_width=wave_width,
                        )
                    )
                self._stats.record_batch(
                    worker_id=output.worker_id,
                    num_nodes=mb.num_nodes,
                    num_requests=mb.num_requests,
                    macs=member_macs,
                    timings=member_timings[k],
                    latencies=latencies,
                    queue_waits=queue_waits[k],
                )
            self._stats.record_wave(
                width=wave_width,
                shared_row_macs=attribution.shared_row_macs,
                total_row_macs=attribution.total_row_macs,
            )
            if self.tracer is not None and batch_ctx is not None:
                self.tracer.emit_under(
                    "wave.scatter",
                    batch_ctx,
                    completed_at,
                    self.clock.now(),
                    batch_id=members[0].batch_id,
                    wave_width=wave_width,
                    num_requests=num_requests,
                )
                self.tracer.emit(
                    "batch.execute",
                    batch_ctx,
                    dispatched_at,
                    completed_at,
                    batch_id=members[0].batch_id,
                    num_requests=num_requests,
                    num_nodes=int(offsets[-1]),
                    worker_id=output.worker_id,
                    cache_hit=cache_hit,
                    wave_width=wave_width,
                    macs=int(result.macs.total),
                )
                for mb in members:
                    for request in mb.requests:
                        if request.trace is not None:
                            self.tracer.emit(
                                "request",
                                request.trace,
                                request.enqueued_at,
                                completed_at,
                                request_id=request.request_id,
                                num_nodes=request.num_nodes,
                                batch_id=mb.batch_id,
                            )
        finally:
            with self._inflight_lock:
                self._inflight -= num_requests
                if self._inflight <= 0:
                    self._idle.notify_all()

    def _build_bundle(
        self, micro_batch: MicroBatch, sorted_ids: np.ndarray, batch_ctx, sampler
    ):
        """Build the canonical-order support bundle (traced when sampled)."""
        if batch_ctx is None:
            return sampler.build_support(sorted_ids)
        # The build's fetch rounds (sharded stores) nest under this span via
        # the activated context.
        build_ctx = self.tracer.child(batch_ctx)
        build_start = self.clock.now()
        with self.tracer.activate(build_ctx):
            bundle = sampler.build_support(sorted_ids)
        self.tracer.emit(
            "support.build",
            build_ctx,
            build_start,
            self.clock.now(),
            batch_id=micro_batch.batch_id,
            num_targets=int(sorted_ids.shape[0]),
            num_support=int(bundle.support.node_ids.shape[0]),
        )
        return bundle

    def _submit_work(
        self,
        micro_batch: MicroBatch,
        bundle,
        cache_hit: bool,
        bundle_is_fresh: bool,
        result_key: bytes | None,
        canonical_idx: np.ndarray | None,
        batch_ctx,
    ) -> None:
        """Dispatch a resolved micro-batch to the pool (dispatcher or fetcher)."""
        compute_ctx = None
        if batch_ctx is not None:
            compute_ctx = self.tracer.child(batch_ctx)
        dispatched_at = self.clock.now()
        queue_waits = [
            dispatched_at - request.enqueued_at
            for request in micro_batch.requests
        ]
        if self.tracer is not None:
            for request in micro_batch.requests:
                if request.trace is not None:
                    self.tracer.emit_under(
                        "queue.wait",
                        request.trace,
                        request.enqueued_at,
                        dispatched_at,
                        batch_id=micro_batch.batch_id,
                    )
        if self._busy is not None:
            self._busy.enter()
        try:
            self.pool.submit(
                WorkItem(
                    batch_id=micro_batch.batch_id,
                    node_ids=micro_batch.node_ids,
                    bundle=bundle,
                    bundle_is_fresh=bundle_is_fresh,
                    callback=lambda output, mb=micro_batch, waits=queue_waits,
                    hit=cache_hit, rkey=result_key, cidx=canonical_idx,
                    sent=dispatched_at, bctx=batch_ctx:
                    self._on_batch_done(
                        mb, waits, hit, output, rkey, cidx, sent, bctx
                    ),
                    trace=compute_ctx,
                )
            )
        except BaseException:
            if self._busy is not None:
                self._busy.exit()
            raise

    # ------------------------------------------------------------------ #
    # Prefetch pipeline callbacks (run on fetcher threads)
    # ------------------------------------------------------------------ #
    def _prefetch_execute(self, task: PrefetchTask, sampler) -> None:
        """Finish a handed-off micro-batch: fetch (or re-find) and submit."""
        micro_batch = task.micro_batch
        assert self.cache is not None and self._busy is not None
        fetch_start = self.clock.now()
        busy_before = self._busy.busy_seconds()
        # A sibling fetch may have inserted this key since the dispatcher's
        # counted miss; peek() skips the double-booked hit/miss accounting.
        bundle = self.cache.peek(task.cache_key)
        cache_hit = bundle is not None
        bundle_is_fresh = False
        if bundle is None:
            bundle = self._build_bundle(
                micro_batch, task.sorted_ids, task.batch_ctx, sampler
            )
            self.cache.put(task.cache_key, bundle)
            bundle_is_fresh = True
        fetch_end = self.clock.now()
        # Compute busy time elapsed during this fetch = the stall the
        # pipeline hid; clamp against wall in case of clock coarseness.
        overlap = min(
            self._busy.busy_seconds() - busy_before, fetch_end - fetch_start
        )
        self._stats.record_prefetch_done(
            fetch_seconds=fetch_end - fetch_start,
            overlap_seconds=max(overlap, 0.0),
        )
        if task.batch_ctx is not None:
            self.tracer.emit_under(
                "prefetch.fetch",
                task.batch_ctx,
                fetch_start,
                fetch_end,
                batch_id=micro_batch.batch_id,
                cache_hit=cache_hit,
                overlap_seconds=max(overlap, 0.0),
            )
        if not np.array_equal(task.sorted_ids, micro_batch.node_ids):
            bundle = bundle.with_target_order(task.rank)
        self._submit_work(
            micro_batch, bundle, cache_hit, bundle_is_fresh,
            task.result_key, task.canonical_idx, task.batch_ctx,
        )

    def _prefetch_cancel(self, task: PrefetchTask, error: BaseException) -> None:
        """Fail a prefetch task's requests (fetch error or pipeline stop)."""
        self._fail_micro_batch(task.micro_batch, error)

    def _replay_micro_batch(
        self, micro_batch: MicroBatch, rank: np.ndarray, recorded: CachedResult
    ) -> None:
        """Answer a micro-batch from the result cache, bypassing the pool.

        Per-node predictions and exit depths are independent of batch order
        and composition over the same node-set, so gathering the recorded
        canonical-order arrays through ``rank`` reproduces exactly what a
        worker would compute.  The recorded MAC/timing breakdowns describe
        the original execution — the stats fold them into the *replayed*
        accumulators, never into the computed ones.
        """
        predictions = recorded.predictions[rank]
        depths = recorded.depths[rank]
        completed_at = self.clock.now()
        # A replay is answered at dispatch, so the full latency *is* the
        # queue wait — one list serves both stats channels.
        latencies = [
            completed_at - request.enqueued_at for request in micro_batch.requests
        ]
        for index, request in enumerate(micro_batch.requests):
            rows = micro_batch.request_slice(index)
            latency = latencies[index]
            request._fulfill(
                ServingResponse(
                    request_id=request.request_id,
                    node_ids=request.node_ids,
                    predictions=predictions[rows],
                    depths=depths[rows],
                    latency_seconds=latency,
                    queue_seconds=latency,
                    cache_hit=False,
                    worker_id=-1,
                    batch_id=micro_batch.batch_id,
                    batch_num_nodes=micro_batch.num_nodes,
                    batch_num_requests=micro_batch.num_requests,
                    batch_macs=recorded.macs,
                    batch_timings=recorded.timings,
                    result_cache_hit=True,
                    tenant=request.tenant,
                )
            )
        if self.tracer is not None:
            primary = next(
                (r.trace for r in micro_batch.requests if r.trace is not None), None
            )
            if primary is not None:
                if micro_batch.started_at is not None:
                    self.tracer.emit_under(
                        "batch.coalesce",
                        primary,
                        micro_batch.started_at,
                        micro_batch.formed_at,
                        batch_id=micro_batch.batch_id,
                        num_requests=micro_batch.num_requests,
                    )
                # A replay is answered at dispatch: zero-duration compute.
                self.tracer.emit_under(
                    "batch.replay",
                    primary,
                    completed_at,
                    completed_at,
                    batch_id=micro_batch.batch_id,
                    num_nodes=micro_batch.num_nodes,
                )
                for request in micro_batch.requests:
                    if request.trace is None:
                        continue
                    self.tracer.emit_under(
                        "queue.wait",
                        request.trace,
                        request.enqueued_at,
                        completed_at,
                        batch_id=micro_batch.batch_id,
                    )
                    self.tracer.emit(
                        "request",
                        request.trace,
                        request.enqueued_at,
                        completed_at,
                        request_id=request.request_id,
                        num_nodes=request.num_nodes,
                        batch_id=micro_batch.batch_id,
                        result_cache_hit=True,
                    )
        self._stats.record_replayed_batch(
            num_nodes=micro_batch.num_nodes,
            num_requests=micro_batch.num_requests,
            macs=recorded.macs,
            latencies=latencies,
            queue_waits=latencies,
        )
        with self._inflight_lock:
            self._inflight -= micro_batch.num_requests
            if self._inflight <= 0:
                self._idle.notify_all()

    def _fail_micro_batch(self, micro_batch: MicroBatch, error: BaseException) -> None:
        """Fail every request of a batch that never reached a worker."""
        for request in micro_batch.requests:
            request._fail(error)
        if self.tracer is not None:
            failed_at = self.clock.now()
            for request in micro_batch.requests:
                if request.trace is not None:
                    self.tracer.emit(
                        "request",
                        request.trace,
                        request.enqueued_at,
                        failed_at,
                        request_id=request.request_id,
                        batch_id=micro_batch.batch_id,
                        status="failed",
                        error=str(error),
                    )
        self._stats.record_failure(micro_batch.num_requests)
        with self._inflight_lock:
            self._inflight -= micro_batch.num_requests
            if self._inflight <= 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------ #
    # Completion path (runs on worker / pool-result threads)
    # ------------------------------------------------------------------ #
    def _on_batch_done(
        self,
        micro_batch: MicroBatch,
        queue_waits: Sequence[float],
        cache_hit: bool,
        output: WorkOutput,
        result_key: bytes | None = None,
        canonical_idx: np.ndarray | None = None,
        dispatched_at: float | None = None,
        batch_ctx=None,
    ) -> None:
        try:
            if output.error is not None or output.result is None:
                error = output.error if output.error is not None else ServingError(
                    f"micro-batch {micro_batch.batch_id} produced no result"
                )
                for request in micro_batch.requests:
                    request._fail(error)
                if self.tracer is not None:
                    failed_at = self.clock.now()
                    for request in micro_batch.requests:
                        if request.trace is not None:
                            self.tracer.emit(
                                "request",
                                request.trace,
                                request.enqueued_at,
                                failed_at,
                                request_id=request.request_id,
                                batch_id=micro_batch.batch_id,
                                status="failed",
                                error=str(error),
                            )
                self._stats.record_failure(micro_batch.num_requests)
                return
            result = output.result
            if self.result_cache is not None and result_key is not None:
                # Record in canonical order (the dispatcher already computed
                # the key and permutation) so any permutation of this
                # node-set replays with one gather.
                assert canonical_idx is not None
                self.result_cache.put(
                    result_key,
                    CachedResult(
                        predictions=np.ascontiguousarray(
                            result.predictions[canonical_idx]
                        ),
                        depths=np.ascontiguousarray(result.depths[canonical_idx]),
                        macs=result.macs,
                        timings=result.timings,
                    ),
                )
            completed_at = self.clock.now()
            if dispatched_at is not None:
                # Feed the controller its cost sample: dispatch-to-completion
                # is the service time the adaptive policies model.
                self.controller.observe_batch(
                    num_nodes=micro_batch.num_nodes,
                    num_requests=micro_batch.num_requests,
                    service_seconds=completed_at - dispatched_at,
                    queue_depth=self.queue.depth,
                )
            latencies = []
            for index, request in enumerate(micro_batch.requests):
                rows = micro_batch.request_slice(index)
                latency = completed_at - request.enqueued_at
                latencies.append(latency)
                request._fulfill(
                    ServingResponse(
                        request_id=request.request_id,
                        node_ids=request.node_ids,
                        predictions=result.predictions[rows],
                        depths=result.depths[rows],
                        latency_seconds=latency,
                        queue_seconds=queue_waits[index],
                        cache_hit=cache_hit,
                        worker_id=output.worker_id,
                        batch_id=micro_batch.batch_id,
                        batch_num_nodes=micro_batch.num_nodes,
                        batch_num_requests=micro_batch.num_requests,
                        batch_macs=result.macs,
                        batch_timings=result.timings,
                        tenant=request.tenant,
                    )
                )
            if self.tracer is not None and batch_ctx is not None:
                # The scatter span covers the per-request fulfil loop above;
                # the batch.execute span is the dispatch-to-completion region
                # whose children (compute, fetch rounds, scatter) explain it.
                self.tracer.emit_under(
                    "scatter",
                    batch_ctx,
                    completed_at,
                    self.clock.now(),
                    batch_id=micro_batch.batch_id,
                    num_requests=micro_batch.num_requests,
                )
                if dispatched_at is not None:
                    self.tracer.emit(
                        "batch.execute",
                        batch_ctx,
                        dispatched_at,
                        completed_at,
                        batch_id=micro_batch.batch_id,
                        num_requests=micro_batch.num_requests,
                        num_nodes=micro_batch.num_nodes,
                        worker_id=output.worker_id,
                        cache_hit=cache_hit,
                        macs=int(result.macs.total),
                    )
                for request in micro_batch.requests:
                    if request.trace is not None:
                        self.tracer.emit(
                            "request",
                            request.trace,
                            request.enqueued_at,
                            completed_at,
                            request_id=request.request_id,
                            num_nodes=request.num_nodes,
                            batch_id=micro_batch.batch_id,
                        )
            self._stats.record_batch(
                worker_id=output.worker_id,
                num_nodes=micro_batch.num_nodes,
                num_requests=micro_batch.num_requests,
                macs=result.macs,
                timings=result.timings,
                latencies=latencies,
                queue_waits=list(queue_waits),
            )
        finally:
            if self._busy is not None:
                self._busy.exit()
            with self._inflight_lock:
                self._inflight -= micro_batch.num_requests
                if self._inflight <= 0:
                    self._idle.notify_all()
