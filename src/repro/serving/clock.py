"""Injectable time for the serving stack: real clocks and a fake one.

Every time-dependent serving component — the request queue's bounded
waits, the micro-batcher's latency budget, the stats throughput window —
reads time and waits through a :class:`Clock` instead of calling
``time.perf_counter`` / ``Condition.wait`` directly.  Production uses
:data:`MONOTONIC_CLOCK`; tests inject a :class:`FakeClock`, which makes
every timeout deterministic and instant: a timed wait *consumes virtual
time* instead of blocking the calling thread, so the serving test suite
runs without a single real sleep on the fake-clock paths.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod

from ..exceptions import ConfigurationError


class Clock(ABC):
    """Time source + wait primitive used by the serving components."""

    @abstractmethod
    def now(self) -> float:
        """Monotonic seconds (an arbitrary epoch; only differences matter)."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Pause the caller for ``seconds`` (virtual or real)."""

    @abstractmethod
    def wait_on(self, condition: threading.Condition, timeout: float | None) -> bool:
        """Wait on ``condition`` (whose lock the caller holds) up to ``timeout``.

        Returns what :meth:`threading.Condition.wait` returns: ``True`` when
        notified, ``False`` on timeout.
        """


class MonotonicClock(Clock):
    """The real thing: ``time.perf_counter`` and genuine condition waits."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait_on(self, condition: threading.Condition, timeout: float | None) -> bool:
        return condition.wait(timeout)


#: Shared default instance — the clock is stateless, one is enough.
MONOTONIC_CLOCK = MonotonicClock()


class FakeClock(Clock):
    """Deterministic virtual time for tests.

    ``now()`` returns a counter advanced only by :meth:`advance` /
    :meth:`sleep` and by timed waits: :meth:`wait_on` never blocks — it
    consumes up to ``max_wait_step`` (default: the full timeout) of virtual
    time and reports a timeout, which is exactly the observable behavior of
    a real timed wait that nobody notified.  Components whose logic loops
    over bounded waits (the queue's total-timeout accounting, the batcher's
    latency budget) therefore run their full control flow, instantly.

    ``max_wait_step`` caps how much virtual time one wait may consume —
    tests use it to force multiple wakeups within a single timeout window
    (e.g. proving a deadline is not re-armed per wakeup).

    An unbounded wait (``timeout=None``) on a fake clock would hang forever
    in virtual time; it raises ``ConfigurationError`` instead.
    """

    def __init__(self, start: float = 0.0, *, max_wait_step: float | None = None) -> None:
        if max_wait_step is not None and max_wait_step <= 0:
            raise ConfigurationError(
                f"max_wait_step must be positive, got {max_wait_step}"
            )
        self._now = float(start)
        self._lock = threading.Lock()
        self.max_wait_step = max_wait_step
        self.waits = 0
        self.sleeps = 0

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (never backward)."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance time by {seconds}")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        self.sleeps += 1
        self.advance(max(seconds, 0.0))

    def wait_on(self, condition: threading.Condition, timeout: float | None) -> bool:
        if timeout is None:
            raise ConfigurationError(
                "a FakeClock cannot serve an unbounded wait (timeout=None); "
                "give the wait a timeout or use a real clock"
            )
        self.waits += 1
        step = timeout if self.max_wait_step is None else min(timeout, self.max_wait_step)
        self.advance(max(step, 0.0))
        return False
