"""Deterministic virtual-time load simulator for batching policies.

Comparing batching policies on wall-clock runs conflates the policy with
machine noise; this module replays a *scripted* arrival schedule against the
real :class:`~repro.serving.batcher.MicroBatcher` + controller control loop
on a :class:`~repro.serving.clock.FakeClock`, with batch service time given
by an explicit cost model.  Everything — queue waits, coalescing budgets,
controller decisions, per-request latencies — runs in virtual time, so two
runs of the same scenario produce byte-identical reports, and a
``QueuePressurePolicy`` vs ``StaticPolicy`` comparison is an exact
statement about the policies, not about the container's scheduler.

The simulator is the engine behind the virtual-time load-ramp assertions in
``tests/serving/test_controller.py`` and the ``adaptive`` suite of
``benchmarks/bench_serving.py``.  It simulates *scheduling* only: no
predictions are computed, which is exactly why it cannot drift from the real
serving semantics — it drives the same ``RequestQueue``/``MicroBatcher``
code the server runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..metrics.timing import LatencySummary, latency_summary
from .batcher import MicroBatcher
from .clock import FakeClock
from .controller import BatchController
from .queue import InferenceRequest, RequestQueue


@dataclass(frozen=True)
class LinearServiceModel:
    """Batch service time ``overhead + per_node · n`` — the cost shape the
    per-batch overheads of supporting-subgraph BFS/extraction produce."""

    overhead_seconds: float
    per_node_seconds: float

    def __call__(self, num_nodes: int) -> float:
        return self.overhead_seconds + self.per_node_seconds * num_nodes


def ramp_arrivals(
    *,
    idle_requests: int,
    burst_requests: int,
    drain_requests: int,
    idle_gap_seconds: float,
    burst_gap_seconds: float,
    nodes_per_request: int = 2,
    start: float = 0.0,
) -> list[tuple[float, int]]:
    """A load ramp: idle trickle → overload burst → trickle back down.

    Returns ``[(arrival_time, num_nodes), ...]`` sorted by time.  The burst
    gap is chosen by callers to exceed the static configuration's service
    capacity, which is what forces a backlog and lets an adaptive policy
    show its value.
    """
    arrivals: list[tuple[float, int]] = []
    now = start
    for gap, count in (
        (idle_gap_seconds, idle_requests),
        (burst_gap_seconds, burst_requests),
        (idle_gap_seconds, drain_requests),
    ):
        for _ in range(count):
            arrivals.append((now, nodes_per_request))
            now += gap
    return arrivals


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one policy under one scenario (all times virtual)."""

    policy: str
    requests_served: int
    nodes_served: int
    batches: int
    wall_seconds: float
    throughput_nodes_per_second: float
    latency: LatencySummary
    batch_widths: tuple[int, ...]
    controller_adjustments: int

    @property
    def batch_width_p95(self) -> float:
        return latency_summary(self.batch_widths).p95

    def as_dict(self) -> dict:
        avg_nodes = self.nodes_served / self.batches if self.batches else 0.0
        return {
            "policy": self.policy,
            "requests_served": self.requests_served,
            "nodes_served": self.nodes_served,
            "batches": self.batches,
            "virtual_wall_seconds": self.wall_seconds,
            "throughput_nodes_per_second": self.throughput_nodes_per_second,
            "latency_ms": self.latency.scaled(1e3).as_dict(),
            "avg_batch_nodes": avg_nodes,
            "batch_width_p95": self.batch_width_p95,
            "controller_adjustments": self.controller_adjustments,
        }


def simulate_policy(
    controller: BatchController,
    arrivals: Sequence[tuple[float, int]],
    service_model: Callable[[int], float],
    *,
    queue_capacity: int = 100_000,
) -> SimulationReport:
    """Serve ``arrivals`` through ``controller`` in virtual time.

    The loop mirrors the server's dispatcher: admit every request that has
    arrived by the current virtual instant, let the batcher coalesce one
    micro-batch (its coalescing waits consume virtual time), charge the
    service model's cost for executing it, feed the observation back to the
    controller, and record per-request latencies.  Arrivals that land while
    a batch is being formed or served join the queue afterwards with their
    original timestamps — exactly the backlog a single dispatcher sees.
    """
    pending = deque(sorted(arrivals))
    clock = FakeClock(start=pending[0][0] if pending else 0.0)
    queue = RequestQueue(queue_capacity, clock=clock)
    batcher = MicroBatcher(queue, controller=controller, clock=clock)
    latencies: list[float] = []
    widths: list[int] = []
    next_id = 0
    requests_served = 0
    nodes_served = 0
    started_at = clock.now()

    def admit_arrived() -> None:
        nonlocal next_id
        while pending and pending[0][0] <= clock.now():
            arrived_at, num_nodes = pending.popleft()
            queue.put(
                InferenceRequest(
                    next_id,
                    np.arange(num_nodes, dtype=np.int64),
                    enqueued_at=arrived_at,
                )
            )
            next_id += 1

    while pending or queue.depth > 0:
        admit_arrived()
        if queue.depth == 0:
            # Idle: jump straight to the next arrival instead of polling.
            clock.advance(pending[0][0] - clock.now())
            continue
        batch = batcher.next_batch(poll_timeout=0.0)
        assert batch is not None  # the queue was non-empty
        # Stragglers that arrived during the coalescing wait enter the
        # queue now (they missed this batch — the single-dispatcher view).
        admit_arrived()
        service_seconds = service_model(batch.num_nodes)
        clock.advance(service_seconds)
        admit_arrived()
        controller.observe_batch(
            num_nodes=batch.num_nodes,
            num_requests=batch.num_requests,
            service_seconds=service_seconds,
            queue_depth=queue.depth,
        )
        completed_at = clock.now()
        for request in batch.requests:
            latencies.append(completed_at - request.enqueued_at)
        widths.append(batch.num_nodes)
        requests_served += batch.num_requests
        nodes_served += batch.num_nodes

    wall = clock.now() - started_at
    return SimulationReport(
        policy=controller.name,
        requests_served=requests_served,
        nodes_served=nodes_served,
        batches=len(widths),
        wall_seconds=wall,
        throughput_nodes_per_second=nodes_served / wall if wall > 0 else 0.0,
        latency=latency_summary(latencies),
        batch_widths=tuple(widths),
        controller_adjustments=controller.adjustments,
    )
