"""Bounded request queue with backpressure for the online serving layer.

Requests enter through :meth:`RequestQueue.put`, which enforces the
:class:`~repro.core.config.ServingConfig` overflow policy: ``"block"`` makes
the submitter wait for space, ``"reject"`` raises
:class:`~repro.exceptions.BackpressureError` at the submitter, and
``"shed_oldest"`` admits the new request by failing the oldest queued one.
The dynamic micro-batcher (:mod:`repro.serving.batcher`) drains the queue in
FIFO order.

A request doubles as the caller's handle on the eventual result:
:meth:`InferenceRequest.result` blocks until the serving pipeline fulfils or
fails it.

All timestamps and bounded waits go through an injectable
:class:`~repro.serving.clock.Clock`, so tests drive the queue on a
:class:`~repro.serving.clock.FakeClock` without real sleeps.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.inference import MACBreakdown, TimingBreakdown
from ..exceptions import BackpressureError, ConfigurationError, ServingError
from .clock import MONOTONIC_CLOCK, Clock

#: Sentinel for "start a fresh trace" — distinct from ``None`` (explicitly
#: untraced), so callers can still opt a request out of tracing entirely.
NEW_TRACE = object()


@dataclass(frozen=True)
class SubmitOptions:
    """Uniform per-request options of every ``submit`` surface.

    Accepted identically by :meth:`repro.serving.InferenceServer.submit`
    and :meth:`repro.shard.ShardRouter.submit`, so a caller can swap a
    single server for a routed fleet (or back) without touching call
    sites.

    Attributes
    ----------
    timeout:
        Bound on the submitter's wait for queue admission under the
        ``"block"`` overflow policy (not on serving itself).
    trace_parent:
        ``NEW_TRACE`` (default) starts a fresh trace per request when the
        target is traced; ``None`` opts the request out of tracing; any
        :class:`~repro.obs.TraceContext` makes the request a child span of
        it (the router threads its route context through this).
    tenant:
        Opaque tenant tag echoed on the request and its response —
        the hook for per-tenant accounting and QoS layers.
    """

    timeout: float | None = None
    trace_parent: object = NEW_TRACE
    tenant: str | None = None


@dataclass(frozen=True)
class ServingResponse:
    """Per-request outcome of one served inference.

    ``predictions``/``depths`` cover exactly the request's ``node_ids`` (in
    request order), sliced out of the micro-batch the request rode in.  The
    ``batch_*`` fields describe that micro-batch: its MAC/timing breakdowns
    are *shared* by every request it carried, so aggregations must deduplicate
    by ``batch_id`` (sum over distinct batches) rather than over responses.
    """

    request_id: int
    node_ids: np.ndarray
    predictions: np.ndarray
    depths: np.ndarray
    latency_seconds: float
    queue_seconds: float
    cache_hit: bool
    worker_id: int
    batch_id: int
    batch_num_nodes: int
    batch_num_requests: int
    batch_macs: MACBreakdown
    batch_timings: TimingBreakdown
    #: True when the batch was answered from the result cache: ``batch_macs``
    #: then describes the *recorded* execution being replayed, not work done
    #: for this response (``worker_id`` is -1 — no worker ran).
    result_cache_hit: bool = False
    #: Tenant tag of the originating request (see :class:`SubmitOptions`).
    tenant: str | None = None
    #: Number of micro-batches fused into the wave this response's batch
    #: rode in (1 = no wave; ``batch_macs`` is then the full batch cost,
    #: otherwise it is this batch's exact attributed share of the union
    #: sweep — distinct batch ids still sum to the executed total).
    wave_width: int = 1


class InferenceRequest:
    """One queued inference request and the caller's future on its response."""

    def __init__(
        self,
        request_id: int,
        node_ids: np.ndarray,
        *,
        enqueued_at: float | None = None,
        trace=None,
        tenant: str | None = None,
    ) -> None:
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.ndim != 1 or node_ids.size == 0:
            raise ConfigurationError(
                "an inference request needs a non-empty 1-D array of node ids"
            )
        self.request_id = request_id
        self.node_ids = node_ids
        #: Root :class:`~repro.obs.TraceContext` of this request, or ``None``
        #: when untraced (tracing off, or the sampler skipped it).
        self.trace = trace
        #: Tenant tag from :class:`SubmitOptions`, echoed on the response.
        self.tenant = tenant
        # The server stamps requests with its clock; standalone construction
        # falls back to real time so batcher deadlines still make sense.
        self.enqueued_at = (
            MONOTONIC_CLOCK.now() if enqueued_at is None else enqueued_at
        )
        self._done = threading.Event()
        self._response: ServingResponse | None = None
        self._error: BaseException | None = None

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    # -- caller side ----------------------------------------------------- #
    def done(self) -> bool:
        """Whether a response (or failure) is available without blocking."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServingResponse:
        """Block until the request is served; raise its failure if it failed."""
        if not self._done.wait(timeout):
            raise ServingError(
                f"request {self.request_id} not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    # -- serving side ---------------------------------------------------- #
    def _fulfill(self, response: ServingResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`InferenceRequest` objects."""

    def __init__(
        self,
        capacity: int,
        overflow_policy: str = "block",
        *,
        clock: Clock | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be positive, got {capacity}")
        if overflow_policy not in ("block", "reject", "shed_oldest"):
            raise ConfigurationError(
                f"unknown overflow policy {overflow_policy!r}"
            )
        self.capacity = capacity
        self.overflow_policy = overflow_policy
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._items: deque[InferenceRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        self.shed = 0
        self.max_depth = 0
        #: Optional hook invoked (outside the failing path, inside the lock)
        #: with each shed request — the server uses it to release in-flight
        #: accounting for requests that never reach a worker.
        self.on_shed: callable | None = None

    # -- producer side --------------------------------------------------- #
    def put(self, request: InferenceRequest, timeout: float | None = None) -> None:
        """Enqueue ``request``, applying the overflow policy when full.

        Under the ``"block"`` policy, ``timeout`` bounds the *total* wait: a
        wakeup that finds the queue refilled by a competing producer resumes
        waiting for the remaining time only, and raises
        :class:`~repro.exceptions.BackpressureError` once the deadline
        passes.
        """
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._lock:
            if self._closed:
                raise ServingError("the request queue is closed")
            while len(self._items) >= self.capacity:
                if self.overflow_policy == "reject":
                    self.rejected += 1
                    raise BackpressureError(
                        f"request queue full ({self.capacity} requests); "
                        f"request {request.request_id} rejected"
                    )
                if self.overflow_policy == "shed_oldest":
                    victim = self._items.popleft()
                    victim._fail(
                        BackpressureError(
                            f"request {victim.request_id} shed to admit "
                            f"request {request.request_id}"
                        )
                    )
                    self.shed += 1
                    if self.on_shed is not None:
                        self.on_shed(victim)
                    continue
                remaining = None if deadline is None else deadline - self.clock.now()
                if remaining is not None and remaining <= 0:
                    self.rejected += 1
                    raise BackpressureError(
                        f"request queue stayed full for {timeout}s; "
                        f"request {request.request_id} rejected"
                    )
                self.clock.wait_on(self._not_full, remaining)
                if self._closed:
                    raise ServingError("the request queue is closed")
            self._items.append(request)
            self.submitted += 1
            self.max_depth = max(self.max_depth, len(self._items))
            self._not_empty.notify()

    # -- consumer side --------------------------------------------------- #
    def pop(self, timeout: float | None = None) -> InferenceRequest | None:
        """Pop the head request; ``None`` on timeout or when closed and empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self.clock.wait_on(self._not_empty, timeout):
                    return None
            request = self._items.popleft()
            self._not_full.notify()
            return request

    def pop_within(
        self, node_budget: int, timeout: float | None = None
    ) -> tuple[str, InferenceRequest | None]:
        """Pop the head request only if it fits within ``node_budget`` nodes.

        Returns ``("ok", request)`` when the head fits, ``("too_big", None)``
        when it exists but would overflow the budget (FIFO order is never
        violated to reach a smaller request further back), and
        ``("empty", None)`` after an empty-queue timeout or queue closure.
        """
        with self._lock:
            while not self._items:
                if self._closed:
                    return "empty", None
                if not self.clock.wait_on(self._not_empty, timeout):
                    return "empty", None
            head = self._items[0]
            if head.num_nodes > node_budget:
                return "too_big", None
            self._items.popleft()
            self._not_full.notify()
            return "ok", head

    # -- lifecycle -------------------------------------------------------- #
    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Stop accepting requests and wake every waiting producer/consumer.

        Already-queued requests stay poppable — a dispatcher draining the
        queue after close still serves them; anything it does not drain must
        be released with :meth:`drain_pending` so waiting callers fail fast
        instead of timing out.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain_pending(
        self, error: BaseException | None = None
    ) -> list[InferenceRequest]:
        """Remove everything still queued, failing each request (shutdown path).

        Every drained request is failed with ``error`` (or a descriptive
        :class:`~repro.exceptions.ServingError` naming the request and the
        shutdown) so callers blocked in ``result(timeout=...)`` wake
        immediately with the real reason instead of running out their
        timeout.  Returns the drained requests for accounting.
        """
        with self._lock:
            pending = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
        for request in pending:
            request._fail(
                error
                if error is not None
                else ServingError(
                    f"request {request.request_id} dropped: the request queue "
                    "was shut down before the request was dispatched"
                )
            )
        return pending
