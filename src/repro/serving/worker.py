"""Parallel worker pool executing micro-batches on private batch engines.

Each worker owns one :class:`~repro.core.inference.BatchEngine` — its own
grow-only double buffers and raw-CSR scratch state — while sharing the
prepared read-only deployment (features, normalized adjacency, stationary
vectors, classifiers) with every sibling.  Independent micro-batches
therefore run concurrently without contention, and the per-worker
MAC/timing breakdowns merge into exactly the sequential accounting.

Backends
--------
``"thread"`` (default)
    One Python thread per worker.  The propagation hot path spends its time
    in scipy's compiled ``csr_matvecs`` and numpy kernels, which run outside
    the interpreter lock, so threads overlap on multi-core machines while
    sharing the deployment state zero-copy.
``"process"``
    A fork-based :mod:`multiprocessing` pool for fully GIL-free execution.
    Fork inheritance shares the deployment state without pickling it; each
    task ships only the node-id array out and the
    :class:`~repro.core.inference.InferenceResult` back.  Support-bundle
    reuse is unavailable (shipping CSR arrays across the boundary costs more
    than rebuilding them), so the serving cache is bypassed.
"""

from __future__ import annotations

import os
import threading
import queue as _queue_mod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.inference import InferenceResult, NAIPredictor
from ..exceptions import ConfigurationError, ServingError
from ..graph.sampling import SupportBundle


@dataclass
class WorkItem:
    """One micro-batch handed to the pool.

    ``bundle`` carries the sampling products when the dispatcher resolved
    them (from the subgraph cache, or freshly built on a miss);
    ``bundle_is_fresh`` marks the latter so the worker folds the build cost
    into the result's sampling time, keeping the merged accounting equal to
    a sequential run.  A cache *hit* contributes no sampling time — that is
    the saving the cache exists for.
    """

    batch_id: int
    node_ids: np.ndarray
    bundle: SupportBundle | None
    bundle_is_fresh: bool
    callback: Callable[["WorkOutput"], None]
    #: Pre-allocated ``engine.compute`` trace context (``None`` untraced).
    #: The worker emits the span at this exact id and activates it around
    #: ``run_batch``, so in-engine fetch rounds nest under the compute span.
    trace: object | None = None


@dataclass
class WorkOutput:
    """Completion record delivered to the :class:`WorkItem` callback."""

    batch_id: int
    result: InferenceResult | None
    worker_id: int
    error: BaseException | None


_SHUTDOWN = object()

# Process-backend worker state: populated once per forked child.
_PROCESS_ENGINE = None


def _process_init(predictor: NAIPredictor) -> None:
    global _PROCESS_ENGINE
    _PROCESS_ENGINE = predictor.make_engine()


def _process_run(node_ids: np.ndarray) -> tuple[int, InferenceResult]:
    assert _PROCESS_ENGINE is not None
    return os.getpid(), _PROCESS_ENGINE.run_batch(node_ids)


class WorkerPool:
    """Fans independent micro-batches out across thread or process workers."""

    def __init__(
        self,
        predictor: NAIPredictor,
        *,
        num_workers: int,
        backend: str = "thread",
        tracer=None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if not predictor.prepared:
            raise ServingError(
                "the predictor must be prepared before building a WorkerPool"
            )
        self.predictor = predictor
        self.num_workers = num_workers
        self.backend = backend
        #: Optional :class:`~repro.obs.Tracer` for per-batch compute spans.
        #: Thread backend only — the process backend cannot share a recorder
        #: across the fork boundary, so items arrive untraced there.
        self.tracer = tracer
        self._closed = False
        if backend == "thread":
            self._inbox: _queue_mod.SimpleQueue = _queue_mod.SimpleQueue()
            self._threads = [
                threading.Thread(
                    target=self._thread_loop,
                    args=(worker_id,),
                    name=f"nai-worker-{worker_id}",
                    daemon=True,
                )
                for worker_id in range(num_workers)
            ]
            for thread in self._threads:
                thread.start()
        else:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError as error:  # pragma: no cover - non-POSIX platforms
                raise ConfigurationError(
                    "the process backend needs the fork start method; "
                    "use backend='thread' on this platform"
                ) from error
            self._pool = context.Pool(
                num_workers, initializer=_process_init, initargs=(predictor,)
            )

    # ------------------------------------------------------------------ #
    def submit(self, item: WorkItem) -> None:
        """Queue ``item``; its callback fires on a worker/result thread."""
        if self._closed:
            raise ServingError("the worker pool is shut down")
        if self.backend == "thread":
            self._inbox.put(item)
            return
        if item.bundle is not None:
            raise ServingError(
                "the process backend cannot exchange SupportBundles; "
                "disable the subgraph cache or use backend='thread'"
            )

        def _on_success(payload: tuple[int, InferenceResult]) -> None:
            worker_id, result = payload
            item.callback(WorkOutput(item.batch_id, result, worker_id, None))

        def _on_error(error: BaseException) -> None:
            item.callback(WorkOutput(item.batch_id, None, -1, error))

        self._pool.apply_async(
            _process_run,
            (item.node_ids,),
            callback=_on_success,
            error_callback=_on_error,
        )

    def _thread_loop(self, worker_id: int) -> None:
        engine = self.predictor.make_engine()
        while True:
            item = self._inbox.get()
            if item is _SHUTDOWN:
                break
            try:
                tracer = self.tracer
                if tracer is not None and item.trace is not None:
                    compute_start = tracer.clock.now()
                    with tracer.activate(item.trace):
                        result = engine.run_batch(item.node_ids, bundle=item.bundle)
                    tracer.emit(
                        "engine.compute",
                        item.trace,
                        compute_start,
                        tracer.clock.now(),
                        batch_id=item.batch_id,
                        worker_id=worker_id,
                        num_nodes=int(item.node_ids.shape[0]),
                        macs=int(result.macs.total),
                    )
                else:
                    result = engine.run_batch(item.node_ids, bundle=item.bundle)
                if item.bundle is not None and item.bundle_is_fresh:
                    # The engine skips sampling accounting for provided
                    # bundles; a freshly built one is real work, so its cost
                    # lands in the breakdown exactly as in a sequential run.
                    result.timings.sampling += item.bundle.build_seconds
                output = WorkOutput(item.batch_id, result, worker_id, None)
            except BaseException as error:  # noqa: BLE001 - forwarded to caller
                output = WorkOutput(item.batch_id, None, worker_id, error)
            item.callback(output)

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop the workers after the already-queued items finish."""
        if self._closed:
            return
        self._closed = True
        if self.backend == "thread":
            for _ in self._threads:
                self._inbox.put(_SHUTDOWN)
            for thread in self._threads:
                thread.join()
        else:
            self._pool.close()
            self._pool.join()
