"""Observability surface of the serving subsystem.

:class:`ServingStats` accumulates per-request latencies, per-worker
MAC/timing breakdowns and batch/cache/queue counters as responses complete;
:meth:`ServingStats.snapshot` renders them into an immutable
:class:`ServingStatsSnapshot` with the numbers an operator watches: nodes/s
throughput, p50/p95/p99 latency, cache hit rate, queue depth and
backpressure counts.

The per-worker breakdowns exist for more than dashboards: summing them must
reproduce the sequential accounting exactly (MACs are deterministic per
batch), which is how the serving benchmark proves the pool computes the same
work as ``NAIPredictor.predict`` — see ``tests/core/test_breakdowns.py``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..core.inference import MACBreakdown, TimingBreakdown
from ..metrics.timing import LatencySummary, latency_summary
from .clock import MONOTONIC_CLOCK, Clock


@dataclass
class WorkerStats:
    """Work attributed to one pool worker."""

    batches: int = 0
    nodes: int = 0
    macs: MACBreakdown = field(default_factory=MACBreakdown)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)


@dataclass(frozen=True)
class ServingStatsSnapshot:
    """Immutable view of the serving metrics at one instant."""

    requests_completed: int
    requests_failed: int
    requests_rejected: int
    requests_shed: int
    nodes_completed: int
    batches_dispatched: int
    avg_batch_nodes: float
    avg_batch_requests: float
    #: Distribution of dispatched batch widths (nodes per micro-batch) and
    #: the batching controller's activity: which policy steered the batcher
    #: and how many times it moved the limits.  Static policies report zero
    #: adjustments by construction.
    batch_width_p50: float
    batch_width_p95: float
    batch_policy: str
    controller_adjustments: int
    throughput_nodes_per_second: float
    latency: LatencySummary
    queue_wait: LatencySummary
    queue_depth: int
    queue_max_depth: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    cache_entries: int
    macs: MACBreakdown
    timings: TimingBreakdown
    per_worker: dict[int, WorkerStats]
    #: Result-cache replay accounting.  ``macs`` above counts only work that
    #: actually executed on a worker; ``replayed_macs`` is the recorded cost
    #: of the batches answered from the result cache instead — kept separate
    #: so cached deployments cannot inflate their computed-MAC savings.
    requests_replayed: int = 0
    nodes_replayed: int = 0
    batches_replayed: int = 0
    replayed_macs: MACBreakdown = field(default_factory=MACBreakdown)
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    result_cache_hit_rate: float = 0.0
    result_cache_entries: int = 0
    #: Prefetch-pipeline accounting (``ServingConfig.prefetch_depth > 0``).
    #: ``prefetch_hits`` counts completed prefetches whose fetch overlapped
    #: nonzero compute busy time — the stalls the pipeline actually hid;
    #: ``prefetch_overlap_seconds`` is that overlap integrated over all
    #: fetches, against ``prefetch_fetch_seconds`` of total fetch wall time.
    prefetch_issued: int = 0
    prefetch_completed: int = 0
    prefetch_cancelled: int = 0
    prefetch_hits: int = 0
    prefetch_fetch_seconds: float = 0.0
    prefetch_overlap_seconds: float = 0.0
    #: Wave-scheduler accounting (``ServingConfig.wave_width > 1``).  A wave
    #: fuses ``wave_width_p50``-ish micro-batches into one union sweep;
    #: ``shared_row_fraction`` is the MAC-weighted fraction of propagation
    #: row work that two or more members needed (the deduplicated share),
    #: and ``macs_per_request`` divides the computed MAC total over the
    #: computed (non-replayed) requests — the wave bench's headline number.
    waves_dispatched: int = 0
    wave_members: int = 0
    wave_width_p50: float = 0.0
    wave_width_p95: float = 0.0
    shared_row_fraction: float = 0.0
    cache_subset_hits: int = 0
    macs_per_request: float = 0.0
    #: Raw numerator/denominator behind ``shared_row_fraction`` — the fleet
    #: merge needs them to recompute the ratio exactly across shards.
    wave_shared_row_macs: float = 0.0
    wave_total_row_macs: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready dictionary (used by the serving benchmark report)."""
        return {
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_rejected": self.requests_rejected,
            "requests_shed": self.requests_shed,
            "nodes_completed": self.nodes_completed,
            "batches_dispatched": self.batches_dispatched,
            "avg_batch_nodes": self.avg_batch_nodes,
            "avg_batch_requests": self.avg_batch_requests,
            "batch_width_p50": self.batch_width_p50,
            "batch_width_p95": self.batch_width_p95,
            "batch_policy": self.batch_policy,
            "controller_adjustments": self.controller_adjustments,
            "throughput_nodes_per_second": self.throughput_nodes_per_second,
            "latency_ms": self.latency.scaled(1e3).as_dict(),
            "queue_wait_ms": self.queue_wait.scaled(1e3).as_dict(),
            "queue_depth": self.queue_depth,
            "queue_max_depth": self.queue_max_depth,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_entries": self.cache_entries,
            "sampling_seconds": self.timings.sampling,
            "total_seconds": self.timings.total,
            "requests_replayed": self.requests_replayed,
            "nodes_replayed": self.nodes_replayed,
            "batches_replayed": self.batches_replayed,
            "computed_macs": self.macs.total,
            "replayed_macs": self.replayed_macs.total,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "result_cache_entries": self.result_cache_entries,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_completed": self.prefetch_completed,
            "prefetch_cancelled": self.prefetch_cancelled,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_fetch_seconds": self.prefetch_fetch_seconds,
            "prefetch_overlap_seconds": self.prefetch_overlap_seconds,
            "waves_dispatched": self.waves_dispatched,
            "wave_members": self.wave_members,
            "wave_width_p50": self.wave_width_p50,
            "wave_width_p95": self.wave_width_p95,
            "shared_row_fraction": self.shared_row_fraction,
            "cache_subset_hits": self.cache_subset_hits,
            "macs_per_request": self.macs_per_request,
            "wave_shared_row_macs": self.wave_shared_row_macs,
            "wave_total_row_macs": self.wave_total_row_macs,
            "per_worker": {
                str(worker): {"batches": stats.batches, "nodes": stats.nodes}
                for worker, stats in sorted(self.per_worker.items())
            },
        }


class ServingStats:
    """Mutable, thread-safe accumulator behind the snapshot surface."""

    def __init__(
        self, latency_sample_cap: int = 100_000, *, clock: Clock | None = None
    ) -> None:
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_sample_cap)
        self._queue_waits: deque[float] = deque(maxlen=latency_sample_cap)
        self._batch_widths: deque[int] = deque(maxlen=latency_sample_cap)
        self._per_worker: dict[int, WorkerStats] = {}
        self._macs = MACBreakdown()
        self._timings = TimingBreakdown()
        self.requests_completed = 0
        self.requests_failed = 0
        self.nodes_completed = 0
        self.batches_dispatched = 0
        self.batch_requests_total = 0
        self.requests_replayed = 0
        self.nodes_replayed = 0
        self.batches_replayed = 0
        self._replayed_macs = MACBreakdown()
        self.prefetch_issued = 0
        self.prefetch_completed = 0
        self.prefetch_cancelled = 0
        self.prefetch_hits = 0
        self._prefetch_fetch_seconds = 0.0
        self._prefetch_overlap_seconds = 0.0
        self.waves_dispatched = 0
        self.wave_members = 0
        self._wave_widths: deque[int] = deque(maxlen=latency_sample_cap)
        self._wave_shared_row_macs = 0.0
        self._wave_total_row_macs = 0.0
        self._first_activity: float | None = None
        self._last_activity: float | None = None
        self._reset_window_locked(self.clock.now())

    def _reset_window_locked(self, now: float) -> None:
        self._win_opened = now
        self._win_latencies: list[float] = []
        self._win_queue_waits: list[float] = []
        self._win_widths: list[int] = []
        self._win_macs = MACBreakdown()
        self._win_replayed_macs = MACBreakdown()
        self._win_timings = TimingBreakdown()
        self._win_requests_completed = 0
        self._win_requests_failed = 0
        self._win_nodes_completed = 0
        self._win_batches_dispatched = 0
        self._win_batch_requests = 0
        self._win_requests_replayed = 0
        self._win_nodes_replayed = 0
        self._win_batches_replayed = 0

    def reset_window(self) -> None:
        """Open a fresh interval window (see :meth:`interval_snapshot`).

        The cumulative accumulators — and the since-first-request
        throughput window of :meth:`snapshot` — are untouched; only the
        interval state is cleared.
        """
        now = self.clock.now()
        with self._lock:
            self._reset_window_locked(now)

    def mark_submission(self) -> None:
        """Open the throughput window at the first accepted request."""
        now = self.clock.now()
        with self._lock:
            if self._first_activity is None:
                self._first_activity = now

    def record_batch(
        self,
        *,
        worker_id: int,
        num_nodes: int,
        num_requests: int,
        macs: MACBreakdown,
        timings: TimingBreakdown,
        latencies: list[float],
        queue_waits: list[float],
    ) -> None:
        """Fold one completed micro-batch into the accumulators."""
        now = self.clock.now()
        with self._lock:
            worker = self._per_worker.setdefault(worker_id, WorkerStats())
            worker.batches += 1
            worker.nodes += num_nodes
            worker.macs = worker.macs.merged_with(macs)
            worker.timings = worker.timings.merged_with(timings)
            self._macs = self._macs.merged_with(macs)
            self._timings = self._timings.merged_with(timings)
            self.batches_dispatched += 1
            self.batch_requests_total += num_requests
            self.requests_completed += num_requests
            self.nodes_completed += num_nodes
            self._batch_widths.append(num_nodes)
            self._latencies.extend(latencies)
            self._queue_waits.extend(queue_waits)
            self._win_macs = self._win_macs.merged_with(macs)
            self._win_timings = self._win_timings.merged_with(timings)
            self._win_batches_dispatched += 1
            self._win_batch_requests += num_requests
            self._win_requests_completed += num_requests
            self._win_nodes_completed += num_nodes
            self._win_widths.append(num_nodes)
            self._win_latencies.extend(latencies)
            self._win_queue_waits.extend(queue_waits)
            if self._first_activity is None:
                self._first_activity = now
            self._last_activity = now

    def record_replayed_batch(
        self,
        *,
        num_nodes: int,
        num_requests: int,
        macs: MACBreakdown,
        latencies: list[float],
        queue_waits: list[float],
    ) -> None:
        """Fold one result-cache replay into the accumulators.

        Replays complete requests (their latencies count) but execute no
        worker MACs; the recorded breakdown of the original execution lands
        in the *replayed* accumulator so computed-MAC totals stay honest.
        """
        now = self.clock.now()
        with self._lock:
            self.batches_replayed += 1
            self.requests_replayed += num_requests
            self.nodes_replayed += num_nodes
            self.requests_completed += num_requests
            self.nodes_completed += num_nodes
            # A replayed batch was still *formed* by the batcher — its width
            # belongs in the controller's batch-width distribution.
            self._batch_widths.append(num_nodes)
            self._replayed_macs = self._replayed_macs.merged_with(macs)
            self._latencies.extend(latencies)
            self._queue_waits.extend(queue_waits)
            self._win_batches_replayed += 1
            self._win_requests_replayed += num_requests
            self._win_nodes_replayed += num_nodes
            self._win_requests_completed += num_requests
            self._win_nodes_completed += num_nodes
            self._win_widths.append(num_nodes)
            self._win_replayed_macs = self._win_replayed_macs.merged_with(macs)
            self._win_latencies.extend(latencies)
            self._win_queue_waits.extend(queue_waits)
            if self._first_activity is None:
                self._first_activity = now
            self._last_activity = now

    def record_prefetch_issued(self) -> None:
        """Count one micro-batch handed to the prefetch pipeline."""
        with self._lock:
            self.prefetch_issued += 1

    def record_prefetch_done(
        self, *, fetch_seconds: float, overlap_seconds: float
    ) -> None:
        """Fold one completed prefetch in; positive overlap is a hit.

        Prefetch accounting is cumulative only (it has no interval window):
        the pipeline is an execution detail, not a per-tick load signal.
        """
        with self._lock:
            self.prefetch_completed += 1
            self._prefetch_fetch_seconds += fetch_seconds
            self._prefetch_overlap_seconds += overlap_seconds
            if overlap_seconds > 0:
                self.prefetch_hits += 1

    def record_prefetch_cancelled(self, count: int) -> None:
        """Count prefetches cancelled by pipeline shutdown."""
        with self._lock:
            self.prefetch_cancelled += count

    def record_wave(
        self, *, width: int, shared_row_macs: float, total_row_macs: float
    ) -> None:
        """Fold one dispatched wave into the accumulators.

        Like prefetch accounting this is cumulative only: the member
        micro-batches themselves still flow through :meth:`record_batch`
        (with their attributed MAC shares), so every interval-window number
        keeps its meaning; the wave counters describe how the members were
        *grouped*.
        """
        with self._lock:
            self.waves_dispatched += 1
            self.wave_members += width
            self._wave_widths.append(width)
            self._wave_shared_row_macs += shared_row_macs
            self._wave_total_row_macs += total_row_macs

    def record_failure(self, num_requests: int) -> None:
        with self._lock:
            self.requests_failed += num_requests
            self._win_requests_failed += num_requests
            self._last_activity = self.clock.now()

    def interval_latency_samples(self) -> tuple[float, ...]:
        """Raw per-request latencies of the current interval window.

        Non-destructive — pair with :meth:`interval_snapshot` (or
        :meth:`reset_window`) to consume the interval.
        """
        with self._lock:
            return tuple(self._win_latencies)

    def interval_snapshot(
        self,
        *,
        reset: bool = True,
        queue_depth: int = 0,
        queue_max_depth: int = 0,
        requests_rejected: int = 0,
        requests_shed: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_entries: int = 0,
        result_cache_hits: int = 0,
        result_cache_misses: int = 0,
        result_cache_entries: int = 0,
        batch_policy: str = "static",
        controller_adjustments: int = 0,
    ) -> ServingStatsSnapshot:
        """Render the window opened by the last :meth:`reset_window`.

        Counters, latency/queue-wait summaries and MAC totals cover only
        the interval; throughput is interval nodes over interval wall time
        (``now - window opened``), so an empty window reports zeros instead
        of dividing by nothing.  ``reset=True`` (default) opens a fresh
        window afterwards, making back-to-back calls a delta stream with no
        external bookkeeping.  Queue/cache gauges are instantaneous levels,
        passed through exactly as in :meth:`snapshot`.
        """
        now = self.clock.now()
        with self._lock:
            window = max(now - self._win_opened, 0.0)
            batches = self._win_batches_dispatched
            width_summary = latency_summary(self._win_widths)
            lookups = cache_hits + cache_misses
            result_lookups = result_cache_hits + result_cache_misses
            snapshot = ServingStatsSnapshot(
                requests_completed=self._win_requests_completed,
                requests_failed=self._win_requests_failed,
                requests_rejected=requests_rejected,
                requests_shed=requests_shed,
                nodes_completed=self._win_nodes_completed,
                batches_dispatched=batches,
                avg_batch_nodes=(
                    self._win_nodes_completed / batches if batches else 0.0
                ),
                avg_batch_requests=(
                    self._win_batch_requests / batches if batches else 0.0
                ),
                batch_width_p50=width_summary.p50,
                batch_width_p95=width_summary.p95,
                batch_policy=batch_policy,
                controller_adjustments=controller_adjustments,
                throughput_nodes_per_second=(
                    self._win_nodes_completed / window if window > 0 else 0.0
                ),
                latency=latency_summary(self._win_latencies),
                queue_wait=latency_summary(self._win_queue_waits),
                queue_depth=queue_depth,
                queue_max_depth=queue_max_depth,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                cache_hit_rate=cache_hits / lookups if lookups else 0.0,
                cache_entries=cache_entries,
                macs=self._win_macs.merged_with(MACBreakdown()),
                timings=self._win_timings.merged_with(TimingBreakdown()),
                per_worker={},
                requests_replayed=self._win_requests_replayed,
                nodes_replayed=self._win_nodes_replayed,
                batches_replayed=self._win_batches_replayed,
                replayed_macs=self._win_replayed_macs.merged_with(MACBreakdown()),
                result_cache_hits=result_cache_hits,
                result_cache_misses=result_cache_misses,
                result_cache_hit_rate=(
                    result_cache_hits / result_lookups if result_lookups else 0.0
                ),
                result_cache_entries=result_cache_entries,
            )
            if reset:
                self._reset_window_locked(now)
            return snapshot

    def snapshot(
        self,
        *,
        queue_depth: int = 0,
        queue_max_depth: int = 0,
        requests_rejected: int = 0,
        requests_shed: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_entries: int = 0,
        result_cache_hits: int = 0,
        result_cache_misses: int = 0,
        result_cache_entries: int = 0,
        batch_policy: str = "static",
        controller_adjustments: int = 0,
        cache_subset_hits: int = 0,
    ) -> ServingStatsSnapshot:
        """Render the current counters (plus queue/cache gauges) immutably."""
        with self._lock:
            if self._first_activity is not None and self._last_activity is not None:
                window = self._last_activity - self._first_activity
            else:
                window = 0.0
            throughput = self.nodes_completed / window if window > 0 else 0.0
            batches = self.batches_dispatched
            width_summary = latency_summary(self._batch_widths)
            wave_width_summary = latency_summary(self._wave_widths)
            computed_requests = self.requests_completed - self.requests_replayed
            lookups = cache_hits + cache_misses
            per_worker = {
                worker: WorkerStats(
                    batches=stats.batches,
                    nodes=stats.nodes,
                    macs=stats.macs.merged_with(MACBreakdown()),
                    timings=stats.timings.merged_with(TimingBreakdown()),
                )
                for worker, stats in self._per_worker.items()
            }
            return ServingStatsSnapshot(
                requests_completed=self.requests_completed,
                requests_failed=self.requests_failed,
                requests_rejected=requests_rejected,
                requests_shed=requests_shed,
                nodes_completed=self.nodes_completed,
                batches_dispatched=batches,
                avg_batch_nodes=self.nodes_completed / batches if batches else 0.0,
                avg_batch_requests=(
                    self.batch_requests_total / batches if batches else 0.0
                ),
                batch_width_p50=width_summary.p50,
                batch_width_p95=width_summary.p95,
                batch_policy=batch_policy,
                controller_adjustments=controller_adjustments,
                throughput_nodes_per_second=throughput,
                latency=latency_summary(self._latencies),
                queue_wait=latency_summary(self._queue_waits),
                queue_depth=queue_depth,
                queue_max_depth=queue_max_depth,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                cache_hit_rate=cache_hits / lookups if lookups else 0.0,
                cache_entries=cache_entries,
                macs=self._macs.merged_with(MACBreakdown()),
                timings=self._timings.merged_with(TimingBreakdown()),
                per_worker=per_worker,
                requests_replayed=self.requests_replayed,
                nodes_replayed=self.nodes_replayed,
                batches_replayed=self.batches_replayed,
                replayed_macs=self._replayed_macs.merged_with(MACBreakdown()),
                result_cache_hits=result_cache_hits,
                result_cache_misses=result_cache_misses,
                result_cache_hit_rate=(
                    result_cache_hits / (result_cache_hits + result_cache_misses)
                    if (result_cache_hits + result_cache_misses)
                    else 0.0
                ),
                result_cache_entries=result_cache_entries,
                prefetch_issued=self.prefetch_issued,
                prefetch_completed=self.prefetch_completed,
                prefetch_cancelled=self.prefetch_cancelled,
                prefetch_hits=self.prefetch_hits,
                prefetch_fetch_seconds=self._prefetch_fetch_seconds,
                prefetch_overlap_seconds=self._prefetch_overlap_seconds,
                waves_dispatched=self.waves_dispatched,
                wave_members=self.wave_members,
                wave_width_p50=wave_width_summary.p50,
                wave_width_p95=wave_width_summary.p95,
                shared_row_fraction=(
                    self._wave_shared_row_macs / self._wave_total_row_macs
                    if self._wave_total_row_macs
                    else 0.0
                ),
                cache_subset_hits=cache_subset_hits,
                macs_per_request=(
                    self._macs.total / computed_requests
                    if computed_requests > 0
                    else 0.0
                ),
                wave_shared_row_macs=self._wave_shared_row_macs,
                wave_total_row_macs=self._wave_total_row_macs,
            )
