"""Asynchronous prefetch pipeline: overlap support fetch with engine compute.

The dispatcher of :class:`~repro.serving.InferenceServer` resolves each
micro-batch's supporting subgraph *before* handing it to the worker pool.
On a sharded deployment that resolution is a chain of cross-shard transport
rounds (BFS frontiers, adjacency rows, feature rows), so on a real network
the single dispatcher thread idles for full round-trip times while the pool
sits ready — fetch and compute are serialized (ROADMAP open item 3).

:class:`PrefetchPipeline` removes that stall.  On a subgraph-cache miss the
dispatcher no longer builds the bundle inline: it enqueues a *prefetch task*
and immediately returns to coalescing the next micro-batch, while a small
crew of fetcher threads (``ServingConfig.prefetch_depth`` of them, each
owning a private engine for its transport state) drives the fetch rounds and
submits the finished batch to the pool itself.  Batch N+1's fetch rounds
thus run while batch N computes — and, at depth > 1, while batch N+2's
rounds are in flight too.  A bounded semaphore caps the number of
speculative fetches outstanding, so the pipeline is double-buffered rather
than unbounded.

Correctness is unchanged by construction: the pipeline moves *where* a
support bundle is built, never *what* is built.  Bundles are keyed by the
canonical node-set, interchangeable per key, and sampling executes no
MAC-counted work, so prefetch-enabled serving is bit-identical in
predictions, exit depths and MAC totals to serialized execution (the fuzz
suite asserts it across transports, shard counts, injected RTTs and kill
schedules).  Only scheduling-dependent *statistics* may differ: two
identical batches in flight at once can both miss the cache (the second
looks up before the first's bundle lands) where serialized execution would
have scored a hit.

:class:`BusyTracker` provides the overlap accounting: it integrates the
wall time during which at least one worker was computing, and each prefetch
credits the busy seconds that elapsed during its fetch as
``prefetch_overlap_seconds`` — a fetch with positive overlap is a
``prefetch_hit`` (the stall it hid was real).

Shutdown is explicit and strand-free: :meth:`PrefetchPipeline.stop` wakes
the fetchers, joins them, and *cancels* every task still queued through the
owner's failure path, which releases the requests' in-flight slots — a
draining server never waits on a fetch that will not happen.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..exceptions import ConfigurationError, ServingError


class BusyTracker:
    """Integrates the wall seconds during which any tracked work was active.

    ``enter()``/``exit()`` bracket each unit of work (the server brackets
    pool compute); overlapping units are merged — the tracker accumulates
    the *union* of the active intervals, not their sum.  Reading
    :meth:`busy_seconds` before and after a fetch yields the compute time
    that elapsed concurrently with it: the overlap the prefetch pipeline
    exists to create.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._active = 0
        self._accumulated = 0.0
        self._since = 0.0

    def enter(self) -> None:
        now = self.clock.now()
        with self._lock:
            if self._active == 0:
                self._since = now
            self._active += 1

    def exit(self) -> None:
        now = self.clock.now()
        with self._lock:
            self._active -= 1
            if self._active == 0:
                self._accumulated += now - self._since

    def busy_seconds(self) -> float:
        """Total busy wall time so far, including the open interval."""
        now = self.clock.now()
        with self._lock:
            busy = self._accumulated
            if self._active > 0:
                busy += now - self._since
            return busy


@dataclass
class PrefetchTask:
    """One micro-batch whose support fetch was handed to the pipeline.

    Carries everything the dispatcher had already resolved — the canonical
    node-set and its permutation, both cache keys, and the batch trace
    context — so the fetcher finishes the batch exactly as the inline path
    would have.
    """

    micro_batch: Any
    sorted_ids: np.ndarray
    rank: np.ndarray
    cache_key: bytes
    result_key: bytes | None = None
    canonical_idx: np.ndarray | None = None
    batch_ctx: Any = None


class PrefetchPipeline:
    """Bounded crew of fetcher threads that build support bundles off-loop.

    Decoupled from the server through three callables so it is testable in
    isolation:

    * ``make_engine()`` — one private engine per fetcher (engines hold
      per-thread transport/trace state; sampling touches no propagation
      buffers);
    * ``execute(task, engine)`` — build the bundle and submit the batch
      (the server's fetch-and-submit path);
    * ``cancel(task, error)`` — fail the task's requests (the server's
      micro-batch failure path).  Invoked for tasks whose ``execute``
      raised *and* for tasks still queued at :meth:`stop` — every accepted
      task reaches exactly one of ``execute``-completed or ``cancel``.

    ``depth`` bounds the speculation: :meth:`submit` blocks once ``depth``
    tasks are queued or fetching, which is the backpressure that keeps the
    pipeline double-buffered instead of racing ahead of the pool.
    """

    def __init__(
        self,
        *,
        make_engine: Callable[[], Any],
        execute: Callable[[PrefetchTask, Any], None],
        cancel: Callable[[PrefetchTask, BaseException], None],
        depth: int,
        name: str = "nai-prefetch",
    ) -> None:
        if depth < 1:
            raise ConfigurationError(
                f"prefetch depth must be positive, got {depth}"
            )
        self.depth = depth
        self._make_engine = make_engine
        self._execute = execute
        self._cancel = cancel
        self._cv = threading.Condition()
        self._tasks: deque[PrefetchTask] = deque()
        self._slots = threading.BoundedSemaphore(depth)
        self._stopped = False
        self._threads = [
            threading.Thread(target=self._loop, name=f"{name}-{i}", daemon=True)
            for i in range(depth)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    @property
    def stopped(self) -> bool:
        return self._stopped

    def submit(self, task: PrefetchTask) -> None:
        """Queue one fetch; blocks while ``depth`` tasks are outstanding."""
        # Acquire in short slices so a submitter blocked on a full pipeline
        # notices a concurrent stop() instead of waiting forever.
        while not self._slots.acquire(timeout=0.05):
            if self._stopped:
                raise ServingError("the prefetch pipeline is stopped")
        with self._cv:
            if self._stopped:
                self._slots.release()
                raise ServingError("the prefetch pipeline is stopped")
            self._tasks.append(task)
            self._cv.notify()

    def stop(self, error: BaseException | None = None) -> int:
        """Join the fetchers, cancel everything still queued; returns count.

        In-flight fetches complete (their batches are submitted normally);
        queued tasks are handed to ``cancel`` with ``error`` so their
        requests fail instead of stranding.  Idempotent.
        """
        with self._cv:
            if self._stopped:
                return 0
            self._stopped = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join()
        with self._cv:
            cancelled = list(self._tasks)
            self._tasks.clear()
        if cancelled:
            reason = (
                error
                if error is not None
                else ServingError("prefetch cancelled: the pipeline stopped")
            )
            for task in cancelled:
                try:
                    self._cancel(task, reason)
                finally:
                    self._slots.release()
        return len(cancelled)

    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        engine = self._make_engine()
        while True:
            with self._cv:
                while not self._tasks and not self._stopped:
                    self._cv.wait()
                if self._stopped:
                    # Leave queued tasks in place: stop() cancels them after
                    # the join, through the owner's failure path.
                    return
                task = self._tasks.popleft()
            try:
                self._execute(task, engine)
            except BaseException as error:  # noqa: BLE001 - forwarded per task
                try:
                    self._cancel(task, error)
                except BaseException:  # noqa: BLE001 - fetchers must survive
                    pass
            finally:
                self._slots.release()
