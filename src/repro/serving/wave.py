"""Cross-request union-batch wave execution.

The paper's premise — k-hop supports concentrate on hub nodes — means
concurrent requests overwhelmingly *overlap*: their supporting subgraphs
share frontier rows that the per-batch engine recomputes once per batch.
A **wave** takes several already-coalesced micro-batches, concatenates
their node ids into one union batch, and runs the existing fused engine
**once** over the union support (one BFS + one CSR extraction + one
propagation sweep).  Per-request results are then scattered back from the
union result.

Why this is bit-identical to isolated execution
-----------------------------------------------
The fused engine's early-exit machinery is already *elementwise per
target occurrence*: ``DistanceNAP`` thresholds each row's smoothness
distance independently and ``GateNAP`` compares each row's two gate
scores, so an occurrence's exit depth never depends on which other rows
share its batch.  Propagated values are exact row-wise functions of the
union support, which contains every member's own support; at the default
float32 dtype the masked-SpMM and classifier matmuls are row-stable
across batch compositions.  Hence predictions *and* exit depths of each
member slice equal the isolated run's, bit for bit (the wave-equivalence
fuzz suite enforces this across seeds, shard counts, widths and
transports).

MAC attribution
---------------
The engine reports one :class:`~repro.core.inference.MACBreakdown` for
the union sweep.  :func:`attribute_wave_macs` replays the fused loop's
*arithmetic shape* — which rows propagate at each depth, who still pays
exit decisions, who classifies where — in exact integer arithmetic and
splits every term across the member batches:

- **propagation**: a computed row's ``row_nnz x F`` MACs are split
  equally among the members that still *need* the row at that depth (a
  member needs a row while it lies within the remaining hop budget of
  one of its not-yet-exited occurrences); the integer remainder goes to
  the lowest-indexed needing member.  Rows needed by two or more members
  are the wave's savings — their MAC mass is reported as
  ``shared_row_fraction``.
- **decision / classification**: charged to the owning member of each
  occurrence (these are per-occurrence terms, never shared).
- **stationary**: the per-target ``|batch_k| x F`` term is exact; the
  graph-wide ``N x F`` term is split pro-rata by member size with the
  integer remainder charged to member 0.

Every term is an integer (below 2^53), so the attribution *reconciles
exactly*: member breakdowns sum to the engine-reported wave breakdown,
which is itself the sequential oracle's cost of serving the deduplicated
union.  A mismatch raises — attribution drift is a bug, never noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.inference import InferenceResult, MACBreakdown, TimingBreakdown
from ..exceptions import ServingError
from ..graph.kernels import hop_distances
from ..graph.sampling import SupportBundle

__all__ = [
    "WaveAttribution",
    "WaveResult",
    "attribute_wave_macs",
    "execute_wave",
    "split_timings",
]


@dataclass(frozen=True)
class WaveAttribution:
    """Per-member MAC accounting for one union sweep.

    ``member_macs[k]`` is member ``k``'s exact share of the wave's
    engine-reported breakdown; the shares sum to the wave total term by
    term.  ``shared_row_macs`` is the propagation row-MAC mass needed by
    two or more members — the work the wave deduplicated — out of
    ``total_row_macs`` computed.
    """

    member_macs: tuple[MACBreakdown, ...]
    shared_row_macs: int
    total_row_macs: int

    @property
    def shared_row_fraction(self) -> float:
        """Fraction of propagation row-MACs needed by 2+ members."""
        if self.total_row_macs == 0:
            return 0.0
        return self.shared_row_macs / self.total_row_macs

    @property
    def total(self) -> MACBreakdown:
        merged = MACBreakdown()
        for macs in self.member_macs:
            merged = merged.merged_with(macs)
        return merged


@dataclass(frozen=True)
class WaveResult:
    """A union sweep's result plus the member scatter map."""

    result: InferenceResult
    offsets: np.ndarray
    attribution: WaveAttribution
    bundle: SupportBundle = field(repr=False)

    @property
    def num_members(self) -> int:
        return int(self.offsets.shape[0] - 1)

    def member_slice(self, index: int) -> slice:
        return slice(int(self.offsets[index]), int(self.offsets[index + 1]))

    def member_predictions(self, index: int) -> np.ndarray:
        return self.result.predictions[self.member_slice(index)]

    def member_depths(self, index: int) -> np.ndarray:
        return self.result.depths[self.member_slice(index)]

    def member_macs(self, index: int) -> MACBreakdown:
        return self.attribution.member_macs[index]


def _needed_rows(
    bundle: SupportBundle,
    occurrence_rows: np.ndarray,
    hop_budget: int,
) -> np.ndarray:
    """Boolean mask of local rows within ``hop_budget`` hops of the targets."""
    num_local = bundle.num_local
    if occurrence_rows.size == 0:
        return np.zeros(num_local, dtype=bool)
    dist = hop_distances(
        bundle.indptr, bundle.indices, occurrence_rows, num_local, hop_budget
    )
    return dist <= hop_budget


def attribute_wave_macs(
    bundle: SupportBundle,
    offsets: np.ndarray,
    result: InferenceResult,
    *,
    policy,
    classifiers,
    config,
    stationary_num_nodes: int,
) -> WaveAttribution:
    """Split a union sweep's engine-reported MACs across its members.

    ``bundle`` must be the exact bundle the sweep executed (targets in
    union batch order); ``offsets`` delimits member ``k``'s occurrences
    as ``[offsets[k], offsets[k+1])``.  The replay mirrors the fused
    loop's control flow — prefix-mode hop pruning until the first exit,
    BFS-refreshed needed sets after — using only ``result.depths``, so it
    runs no floating-point propagation.  Raises
    :class:`~repro.exceptions.ServingError` if the attributed totals do
    not reconcile exactly with ``result.macs``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    depths = np.asarray(result.depths, dtype=np.int64)
    num_members = int(offsets.shape[0] - 1)
    num_occurrences = int(depths.shape[0])
    if int(offsets[-1]) != num_occurrences:
        raise ServingError(
            f"wave offsets cover {int(offsets[-1])} occurrences, result has "
            f"{num_occurrences}"
        )
    num_features = int(bundle.local_features.shape[1])
    target_local = bundle.support.target_local
    row_nnz = np.diff(bundle.indptr).astype(np.int64)
    t_min, t_max = int(config.t_min), int(config.t_max)

    prop = np.zeros(num_members, dtype=np.int64)
    decision = np.zeros(num_members, dtype=np.int64)
    classification = np.zeros(num_members, dtype=np.int64)
    stationary = np.zeros(num_members, dtype=np.int64)
    shared_row_macs = 0
    total_row_macs = 0

    member_sizes = np.diff(offsets)
    member_of = np.repeat(np.arange(num_members, dtype=np.int64), member_sizes)

    # Stationary term: N*F split pro-rata by member size (integer remainder
    # to member 0) + each member's own |batch_k|*F.
    graph_term = int(stationary_num_nodes) * num_features
    shares = (graph_term * member_sizes) // num_occurrences
    shares[0] += graph_term - int(shares.sum())
    stationary += shares + member_sizes * num_features

    decision_cost = (
        int(policy.decision_macs_per_node(num_features))
        if policy is not None
        else 0
    )

    prefix_mode = True
    for depth in range(1, t_max + 1):
        alive = depths >= depth
        if not np.any(alive):
            break  # the engine broke out of the loop after depth-1's exits
        hop_budget = t_max - depth
        if prefix_mode:
            union_needed = bundle.support.hops <= hop_budget
        else:
            union_needed = _needed_rows(bundle, target_local[alive], hop_budget)
        rows = np.flatnonzero(union_needed)
        row_macs = row_nnz[rows] * num_features

        needs = np.zeros((num_members, rows.shape[0]), dtype=bool)
        for k in range(num_members):
            member_alive = alive[offsets[k] : offsets[k + 1]]
            if not np.any(member_alive):
                continue
            occurrence_rows = target_local[offsets[k] : offsets[k + 1]][
                member_alive
            ]
            needs[k] = _needed_rows(bundle, occurrence_rows, hop_budget)[rows]
        counts = needs.sum(axis=0).astype(np.int64)
        if np.any(counts == 0):
            raise ServingError(
                "wave attribution replay computed a row no member needs — "
                "the replay diverged from the engine's pruning"
            )
        share = row_macs // counts
        remainder = row_macs - share * counts
        for k in range(num_members):
            prop[k] += int(share[needs[k]].sum())
        first_needer = needs.argmax(axis=0)
        np.add.at(prop, first_needer, remainder)
        shared_row_macs += int(row_macs[counts >= 2].sum())
        total_row_macs += int(row_macs.sum())

        if depth < t_min:
            continue
        if depth < t_max and policy is not None:
            # Every still-alive occurrence pays one exit decision.
            np.add.at(decision, member_of[alive], decision_cost)
            exited = alive & (depths == depth)
            if np.any(exited):
                prefix_mode = False
        exiting_now = depths == depth
        if np.any(exiting_now):
            cost = int(classifiers[depth - 1].classification_macs_per_node())
            np.add.at(classification, member_of[exiting_now], cost)

    reported = result.macs
    totals = {
        "stationary": int(stationary.sum()),
        "propagation": int(prop.sum()),
        "decision": int(decision.sum()),
        "classification": int(classification.sum()),
    }
    expected = {
        "stationary": int(reported.stationary),
        "propagation": int(reported.propagation),
        "decision": int(reported.decision),
        "classification": int(reported.classification),
    }
    if totals != expected:
        raise ServingError(
            f"wave MAC attribution does not reconcile: replay {totals} vs "
            f"engine {expected}"
        )

    member_macs = tuple(
        MACBreakdown(
            stationary=float(stationary[k]),
            propagation=float(prop[k]),
            decision=float(decision[k]),
            classification=float(classification[k]),
        )
        for k in range(num_members)
    )
    return WaveAttribution(
        member_macs=member_macs,
        shared_row_macs=shared_row_macs,
        total_row_macs=total_row_macs,
    )


def split_timings(
    timings: TimingBreakdown, weights: "list[float]"
) -> "list[TimingBreakdown]":
    """Split a wave's timing breakdown across members by ``weights``.

    Weights are normalized; timings (unlike MACs) are measurements, so
    the pro-rata split is an attribution convention, not an exact ledger.
    """
    total = sum(weights)
    if total <= 0.0:
        weights = [1.0] * len(weights)
        total = float(len(weights))
    return [
        TimingBreakdown(
            sampling=timings.sampling * w / total,
            stationary=timings.stationary * w / total,
            propagation=timings.propagation * w / total,
            decision=timings.decision * w / total,
            classification=timings.classification * w / total,
        )
        for w in weights
    ]


def execute_wave(engine, batches, *, bundle: SupportBundle | None = None) -> WaveResult:
    """Run one union sweep over ``batches`` and attribute its MACs.

    The deterministic core of the wave scheduler: concatenate the member
    batches, run the (fused) ``engine`` once over the union support, and
    split the reported MACs with :func:`attribute_wave_macs`.  Member
    ``k``'s predictions/depths are the union result's rows
    ``[offsets[k], offsets[k+1])`` — bit-identical to running the member
    alone.  Also the harness ``benchmarks/bench_wave.py`` uses to measure
    MACs-per-request against wave width without scheduler timing noise.
    """
    sizes = [int(np.asarray(batch).shape[0]) for batch in batches]
    offsets = np.concatenate(
        ([0], np.cumsum(np.asarray(sizes, dtype=np.int64)))
    )
    union = np.concatenate([np.asarray(b, dtype=np.int64) for b in batches])
    if bundle is None:
        bundle = engine.build_support(union)
    result = engine.run_batch(union, bundle=bundle)
    attribution = attribute_wave_macs(
        bundle,
        offsets,
        result,
        policy=engine.policy,
        classifiers=engine.classifiers,
        config=engine.config,
        stationary_num_nodes=engine.stationary.num_nodes,
    )
    return WaveResult(
        result=result, offsets=offsets, attribution=attribution, bundle=bundle
    )
