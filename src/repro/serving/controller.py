"""Adaptive micro-batching controllers: batch limits that track load.

The micro-batcher's two knobs — ``max_batch_size`` nodes and
``max_wait_ms`` of the oldest request — were static configuration until
this module: the server either over-waited when idle (a wide budget nobody
fills) or under-batched under load (a narrow budget while the queue grows).
The paper's node-adaptive propagation spends work only where nodes need it;
a :class:`BatchController` applies the same idea to *batching*: batch width
should track queue pressure, not a config constant (the serving-side reading
of the paper's batch-size study, Figure 5, and of the large-scale analysis
in Gao et al., 2022).

Three policies implement the interface:

:class:`StaticPolicy`
    The previous behavior and the default — always returns the configured
    ``(max_batch_size, max_wait_ms)``.  Zero adjustments, zero surprises.

:class:`QueuePressurePolicy`
    Widens both knobs toward configured ceilings as queue depth and oldest
    request age grow, and shrinks them back when the queue drains.  A
    two-watermark hysteresis band plus a post-adjustment hold keep it from
    oscillating when the depth hovers around a threshold.

:class:`MarginalLatencyPolicy`
    Maintains an online linear cost model ``service(n) ≈ a + b·n`` from
    observed batch service times and picks the widest batch whose estimated
    completion latency stays under a target SLO, spending the remaining
    latency slack as coalescing wait.

Every policy is deterministic: decisions depend only on the observed
sequence of ``(queue_depth, oldest_wait, service samples)``, so the whole
control loop is exactly reproducible on a
:class:`~repro.serving.clock.FakeClock`.  Controllers never change *what* is
computed — per-node predictions, exit depths and MACs are independent of
batch composition — only how requests are grouped and how long they wait.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = [
    "BatchController",
    "BatchLimits",
    "MarginalLatencyPolicy",
    "QueuePressurePolicy",
    "StaticPolicy",
    "build_controller",
]


@dataclass(frozen=True)
class BatchLimits:
    """The batcher's operating point for one micro-batch."""

    max_batch_size: int
    max_wait_seconds: float


class BatchController(ABC):
    """Policy interface the micro-batcher consults before forming a batch.

    ``limits`` runs on the dispatcher thread (once per micro-batch);
    ``observe_batch`` runs on worker completion threads.  Implementations
    guard their state with :attr:`_lock` so the two never race, and count
    every change of the returned limits in :attr:`adjustments`.
    """

    name: str = "controller"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._adjustments = 0
        self._last_limits: BatchLimits | None = None

    @property
    def adjustments(self) -> int:
        """How many times the returned limits changed between decisions."""
        with self._lock:
            return self._adjustments

    def limits(self, *, queue_depth: int, oldest_wait_seconds: float) -> BatchLimits:
        """The operating point for the batch about to be formed.

        ``queue_depth`` counts every request the batch could coalesce
        (including the already-popped head); ``oldest_wait_seconds`` is how
        long the head has already waited.
        """
        with self._lock:
            decided = self._decide(
                queue_depth=queue_depth,
                oldest_wait_seconds=oldest_wait_seconds,
            )
            if self._last_limits is not None and decided != self._last_limits:
                self._adjustments += 1
            self._last_limits = decided
            return decided

    def observe_batch(
        self,
        *,
        num_nodes: int,
        num_requests: int,
        service_seconds: float,
        queue_depth: int,
    ) -> None:
        """Feedback after a micro-batch completes (default: ignored)."""

    @abstractmethod
    def _decide(self, *, queue_depth: int, oldest_wait_seconds: float) -> BatchLimits:
        """Compute the next limits; runs under :attr:`_lock`."""

    def describe(self) -> dict:
        """JSON-ready description of the policy and its current state."""
        with self._lock:
            return self._describe_locked()

    def _describe_locked(self) -> dict:
        """Build the description; runs under :attr:`_lock` (subclasses extend
        this, not :meth:`describe`, so their state reads stay atomic)."""
        last = self._last_limits
        return {
            "policy": self.name,
            "adjustments": self._adjustments,
            "max_batch_size": last.max_batch_size if last else None,
            "max_wait_seconds": last.max_wait_seconds if last else None,
        }


class StaticPolicy(BatchController):
    """The pre-controller behavior: fixed limits from the config."""

    name = "static"

    def __init__(self, max_batch_size: int, max_wait_seconds: float) -> None:
        super().__init__()
        if max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_seconds < 0:
            raise ConfigurationError(
                f"max_wait_seconds must be non-negative, got {max_wait_seconds}"
            )
        self._limits = BatchLimits(max_batch_size, max_wait_seconds)
        self._last_limits = self._limits

    def _decide(self, *, queue_depth: int, oldest_wait_seconds: float) -> BatchLimits:
        return self._limits


class QueuePressurePolicy(BatchController):
    """Widen under backlog, shrink when drained, with hysteresis.

    The policy moves a discrete pressure ``level`` between ``0`` (idle
    operating point: the configured base ``max_batch_size`` /
    ``max_wait_seconds``) and ``levels`` (the configured ceilings).  Batch
    width interpolates geometrically between base and ceiling — each level
    multiplies the width by a constant factor, matching the multiplicative
    growth of a backlog — while the wait budget interpolates linearly (a
    base wait of zero must still be able to grow).

    One decision per micro-batch:

    * **widen** (``level + 1``) when the coalescable queue depth reaches
      ``widen_depth`` *or* the head request has already waited longer than
      the current wait budget (the queue is aging faster than it drains);
    * **shrink** (``level - 1``) when the depth has fallen to
      ``shrink_depth`` or below;
    * **hold** in between — the ``(shrink_depth, widen_depth)`` band is the
      hysteresis gap — and for ``hold_decisions`` decisions after any
      change, so one noisy depth sample cannot flip the level back.
    """

    name = "queue_pressure"

    def __init__(
        self,
        *,
        base_batch_size: int,
        batch_size_ceiling: int,
        base_wait_seconds: float,
        wait_seconds_ceiling: float,
        widen_depth: int = 8,
        shrink_depth: int = 2,
        levels: int = 4,
        hold_decisions: int = 2,
    ) -> None:
        super().__init__()
        if base_batch_size < 1:
            raise ConfigurationError(f"base_batch_size must be positive, got {base_batch_size}")
        if batch_size_ceiling < base_batch_size:
            raise ConfigurationError(
                f"batch_size_ceiling ({batch_size_ceiling}) must be >= "
                f"base_batch_size ({base_batch_size})"
            )
        if base_wait_seconds < 0 or wait_seconds_ceiling < base_wait_seconds:
            raise ConfigurationError(
                "wait budget range must satisfy 0 <= base <= ceiling, got "
                f"[{base_wait_seconds}, {wait_seconds_ceiling}]"
            )
        if shrink_depth >= widen_depth:
            raise ConfigurationError(
                f"hysteresis needs shrink_depth ({shrink_depth}) < "
                f"widen_depth ({widen_depth})"
            )
        if levels < 1:
            raise ConfigurationError(f"levels must be positive, got {levels}")
        if hold_decisions < 0:
            raise ConfigurationError(f"hold_decisions must be non-negative, got {hold_decisions}")
        self.base_batch_size = base_batch_size
        self.batch_size_ceiling = batch_size_ceiling
        self.base_wait_seconds = base_wait_seconds
        self.wait_seconds_ceiling = wait_seconds_ceiling
        self.widen_depth = widen_depth
        self.shrink_depth = shrink_depth
        self.levels = levels
        self.hold_decisions = hold_decisions
        self._level = 0
        self._hold = 0
        # Adjustments count moves away from the idle operating point too.
        self._last_limits = self._limits_at(0)

    def _limits_at(self, level: int) -> BatchLimits:
        fraction = level / self.levels
        ratio = self.batch_size_ceiling / self.base_batch_size
        width = int(round(self.base_batch_size * ratio**fraction))
        width = min(max(width, self.base_batch_size), self.batch_size_ceiling)
        wait = self.base_wait_seconds + fraction * (
            self.wait_seconds_ceiling - self.base_wait_seconds
        )
        return BatchLimits(width, wait)

    def _decide(self, *, queue_depth: int, oldest_wait_seconds: float) -> BatchLimits:
        current = self._limits_at(self._level)
        if self._hold > 0:
            self._hold -= 1
            return current
        aging = oldest_wait_seconds > current.max_wait_seconds
        pressed = queue_depth >= self.widen_depth or aging
        if pressed and self._level < self.levels:
            self._level += 1
            self._hold = self.hold_decisions
        elif queue_depth <= self.shrink_depth and self._level > 0:
            self._level -= 1
            self._hold = self.hold_decisions
        return self._limits_at(self._level)

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def _describe_locked(self) -> dict:
        payload = super()._describe_locked()
        payload["level"] = self._level
        payload["levels"] = self.levels
        return payload


class MarginalLatencyPolicy(BatchController):
    """Pick the widest batch whose estimated latency fits under an SLO.

    The policy fits ``service(n) = a + b·n`` online from completed-batch
    samples ``(num_nodes, service_seconds)`` by running least squares (five
    scalar accumulators, O(1) per observation).  Once the model is usable
    (two distinct widths observed and a non-negative marginal cost ``b``),
    each decision returns the widest width ``w`` in
    ``[base_batch_size, batch_size_ceiling]`` with

        ``a + b·w <= slo_seconds``

    — the marginal latency each extra node adds is ``b``, so this is the
    point past which batching deeper would spend the SLO on compute — and a
    wait budget of the remaining slack ``slo - service(w)`` (clamped to the
    configured ceiling): time the SLO leaves for coalescing.  When even the
    base width exceeds the SLO estimate the policy degrades to the base
    limits with zero wait (latency-first).  Before the model is usable it
    returns the base limits unchanged.
    """

    name = "marginal_latency"

    def __init__(
        self,
        *,
        slo_seconds: float,
        base_batch_size: int,
        batch_size_ceiling: int,
        wait_seconds_ceiling: float,
        base_wait_seconds: float = 0.0,
    ) -> None:
        super().__init__()
        if slo_seconds <= 0:
            raise ConfigurationError(f"slo_seconds must be positive, got {slo_seconds}")
        if base_batch_size < 1:
            raise ConfigurationError(f"base_batch_size must be positive, got {base_batch_size}")
        if batch_size_ceiling < base_batch_size:
            raise ConfigurationError(
                f"batch_size_ceiling ({batch_size_ceiling}) must be >= "
                f"base_batch_size ({base_batch_size})"
            )
        if base_wait_seconds < 0 or wait_seconds_ceiling < 0:
            raise ConfigurationError("wait budgets must be non-negative")
        self.slo_seconds = slo_seconds
        self.base_batch_size = base_batch_size
        self.batch_size_ceiling = batch_size_ceiling
        self.base_wait_seconds = base_wait_seconds
        self.wait_seconds_ceiling = wait_seconds_ceiling
        # Running least-squares accumulators over (n, t) samples.
        self._count = 0
        self._sum_n = 0.0
        self._sum_t = 0.0
        self._sum_nn = 0.0
        self._sum_nt = 0.0
        self._widths: set[int] = set()
        # Adjustments count the first model-driven move off the base point.
        self._last_limits = BatchLimits(base_batch_size, base_wait_seconds)

    def observe_batch(
        self,
        *,
        num_nodes: int,
        num_requests: int,
        service_seconds: float,
        queue_depth: int,
    ) -> None:
        with self._lock:
            self._count += 1
            self._sum_n += num_nodes
            self._sum_t += service_seconds
            self._sum_nn += num_nodes * num_nodes
            self._sum_nt += num_nodes * service_seconds
            self._widths.add(num_nodes)

    def _model(self) -> tuple[float, float] | None:
        """``(a, b)`` of the fitted cost line, or ``None`` while unusable."""
        if len(self._widths) < 2:
            return None
        denominator = self._count * self._sum_nn - self._sum_n * self._sum_n
        if denominator <= 0:
            return None
        slope = (self._count * self._sum_nt - self._sum_n * self._sum_t) / denominator
        intercept = (self._sum_t - slope * self._sum_n) / self._count
        if slope < 0:
            # Noise dominates (bigger batches measured faster); an inverted
            # model would argue for infinite batches — wait for better data.
            return None
        return intercept, slope

    def _decide(self, *, queue_depth: int, oldest_wait_seconds: float) -> BatchLimits:
        model = self._model()
        if model is None:
            return BatchLimits(self.base_batch_size, self.base_wait_seconds)
        intercept, slope = model
        if intercept + slope * self.base_batch_size > self.slo_seconds:
            # Even the narrowest batch blows the SLO estimate: stop waiting,
            # serve latency-first at the base width.
            return BatchLimits(self.base_batch_size, 0.0)
        if slope == 0:
            width = self.batch_size_ceiling
        else:
            width = int((self.slo_seconds - intercept) / slope)
            width = min(max(width, self.base_batch_size), self.batch_size_ceiling)
        slack = self.slo_seconds - (intercept + slope * width)
        wait = min(max(slack, 0.0), self.wait_seconds_ceiling)
        return BatchLimits(width, wait)

    def _describe_locked(self) -> dict:
        payload = super()._describe_locked()
        model = self._model()
        payload["slo_seconds"] = self.slo_seconds
        payload["samples"] = self._count
        if model is None:
            payload["model"] = None
        else:
            payload["model"] = {"intercept": model[0], "slope": model[1]}
        return payload


def build_controller(config) -> BatchController:
    """Build the policy named by ``config.batch_policy`` (a ServingConfig).

    The config's static knobs are the base operating point of every policy;
    ``batch_size_ceiling`` / ``wait_ms_ceiling`` (``0`` = same as base)
    bound the adaptive ones.
    """
    base_wait = config.max_wait_ms / 1e3
    ceiling_width = config.batch_size_ceiling or config.max_batch_size
    ceiling_wait = (config.wait_ms_ceiling or config.max_wait_ms) / 1e3
    if config.batch_policy == "static":
        return StaticPolicy(config.max_batch_size, base_wait)
    if config.batch_policy == "queue_pressure":
        return QueuePressurePolicy(
            base_batch_size=config.max_batch_size,
            batch_size_ceiling=ceiling_width,
            base_wait_seconds=base_wait,
            wait_seconds_ceiling=ceiling_wait,
            widen_depth=config.pressure_widen_depth,
            shrink_depth=config.pressure_shrink_depth,
            levels=config.pressure_levels,
            hold_decisions=config.pressure_hold_decisions,
        )
    if config.batch_policy == "marginal_latency":
        return MarginalLatencyPolicy(
            slo_seconds=config.latency_slo_ms / 1e3,
            base_batch_size=config.max_batch_size,
            batch_size_ceiling=ceiling_width,
            base_wait_seconds=base_wait,
            wait_seconds_ceiling=ceiling_wait,
        )
    raise ConfigurationError(f"unknown batch policy {config.batch_policy!r}")
