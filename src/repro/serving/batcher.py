"""Dynamic micro-batching: coalesce queued requests under a latency budget.

Online traffic arrives as many small requests (often single nodes), but the
inference engine's cost is dominated by per-batch overheads — supporting-node
BFS, local-CSR extraction and propagation over heavily *overlapping* k-hop
neighbourhoods.  Coalescing requests into one micro-batch shares all of that
work: per-node propagated features are batch-independent (the supporting
subgraph of the union covers every member's neighbourhood exactly), so
predictions and exit depths are unchanged while total MACs drop — the paper's
batch-size effect (Figure 5) turned into a serving-layer win.

The batcher balances throughput against latency with two knobs from
:class:`~repro.core.config.ServingConfig`:

* ``max_batch_size`` — node budget of one micro-batch; the batcher stops
  coalescing when the next queued request would overflow it.
* ``max_wait_ms`` — once the *oldest* queued request has waited this long,
  the micro-batch is dispatched regardless of how full it is.

Both knobs are an *operating point*, not a constant: before forming each
batch the batcher consults its :class:`~repro.serving.controller.
BatchController`, which may move the limits with load (see
:mod:`repro.serving.controller`).  The default :class:`~repro.serving.
controller.StaticPolicy` reproduces the fixed-knob behavior exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .clock import Clock
from .controller import BatchController, BatchLimits, StaticPolicy
from .queue import InferenceRequest, RequestQueue


@dataclass(frozen=True)
class MicroBatch:
    """A set of coalesced requests plus the concatenated node-id batch.

    ``offsets[i] : offsets[i+1]`` slices request ``i``'s rows out of any
    per-node result array computed for ``node_ids``.
    """

    batch_id: int
    requests: tuple[InferenceRequest, ...]
    node_ids: np.ndarray
    offsets: np.ndarray
    formed_at: float
    #: The controller limits this batch was formed under (observability —
    #: tests and the adaptive bench read the width the policy granted).
    limits: BatchLimits | None = None
    #: When coalescing began (the first member was popped); ``formed_at -
    #: started_at`` is the coalesce wait the tracing layer reports.  ``None``
    #: for hand-assembled batches.
    started_at: float | None = None

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def request_slice(self, index: int) -> slice:
        return slice(int(self.offsets[index]), int(self.offsets[index + 1]))


class MicroBatcher:
    """Forms :class:`MicroBatch` objects from a :class:`RequestQueue`."""

    def __init__(
        self,
        queue: RequestQueue,
        *,
        max_batch_size: int | None = None,
        max_wait_seconds: float | None = None,
        controller: BatchController | None = None,
        clock: Clock | None = None,
    ) -> None:
        if controller is None:
            if max_batch_size is None or max_wait_seconds is None:
                raise ConfigurationError(
                    "give the batcher either a controller or both "
                    "max_batch_size and max_wait_seconds"
                )
            # StaticPolicy validates the two knobs exactly as before.
            controller = StaticPolicy(max_batch_size, max_wait_seconds)
        elif max_batch_size is not None or max_wait_seconds is not None:
            raise ConfigurationError(
                "a controller already carries the batch limits; do not also "
                "pass max_batch_size / max_wait_seconds"
            )
        self.queue = queue
        #: Swappable mid-stream: the batcher re-reads this attribute before
        #: forming every batch, so an operator (or test) can replace the
        #: policy on a live batcher without dropping a request.
        self.controller = controller
        # Deadlines must be measured against the same clock that stamped the
        # requests — default to the queue's.
        self.clock = clock if clock is not None else queue.clock
        self._next_batch_id = 0

    def next_batch(self, poll_timeout: float = 0.05) -> MicroBatch | None:
        """Coalesce the next micro-batch; ``None`` if no request arrived.

        Blocks up to ``poll_timeout`` for the first request, then asks the
        controller for this batch's limits (queue depth and head age are the
        controller's inputs) and keeps pulling whole requests (FIFO, never
        splitting one) until the node budget is reached, the head request
        would overflow it, or the queue is empty with the oldest member's
        wait budget spent.  An expired budget stops *waiting*, never
        *draining*: under backlog the batcher still coalesces everything
        already queued up to the node budget — that is exactly when batching
        pays the most.  A single request larger than the budget still forms
        its own batch — the engine handles any batch size.
        """
        first = self.queue.pop(timeout=poll_timeout)
        if first is None:
            return None
        started_at = self.clock.now()
        # One controller decision per micro-batch, made once the batch is
        # known to exist: the coalescable depth counts the popped head.
        limits = self.controller.limits(
            queue_depth=self.queue.depth + 1,
            oldest_wait_seconds=self.clock.now() - first.enqueued_at,
        )
        requests = [first]
        num_nodes = first.num_nodes
        deadline = first.enqueued_at + limits.max_wait_seconds
        while num_nodes < limits.max_batch_size:
            wait = deadline - self.clock.now()
            status, nxt = self.queue.pop_within(
                limits.max_batch_size - num_nodes, timeout=max(wait, 0.0)
            )
            if status == "ok":
                assert nxt is not None
                requests.append(nxt)
                num_nodes += nxt.num_nodes
                continue
            if status == "too_big":
                break
            # empty: dispatch if the budget is spent (or nothing more can
            # arrive), otherwise re-check — the timed wait above already
            # slept until the deadline or a new arrival.
            if wait <= 0 or self.queue.is_closed:
                break
        return self._assemble(requests, limits, started_at)

    def _assemble(
        self,
        requests: list[InferenceRequest],
        limits: BatchLimits,
        started_at: float | None = None,
    ) -> MicroBatch:
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        sizes = np.array([r.num_nodes for r in requests], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        node_ids = (
            requests[0].node_ids
            if len(requests) == 1
            else np.concatenate([r.node_ids for r in requests])
        )
        return MicroBatch(
            batch_id=batch_id,
            requests=tuple(requests),
            node_ids=node_ids,
            offsets=offsets,
            formed_at=self.clock.now(),
            limits=limits,
            started_at=started_at,
        )
