"""LRU cache of supporting-subgraph bundles for streaming workloads.

Consecutive batches of a streaming workload often repeat: recommendation
sessions re-score the same item sets, fraud services re-check the same
account cohorts, dashboards re-issue identical queries.  The sampling
products of such a batch — the k-hop BFS ordering, the local normalized
adjacency in raw CSR form and the gathered hop-0 feature rows, packaged as a
:class:`~repro.graph.sampling.SupportBundle` — depend only on the node
*multiset* and the deployment (hop order is sorted, BFS starts from the
unique targets), so one cached bundle per node-set serves every permutation
of it; only the per-occurrence ``target_local`` map is order-specific, and
it is rebased per use.

A :class:`SubgraphCache` hit removes the *entire* sampling stage from a
served batch while every MAC-counted operation (propagation, exit decisions,
classification) still executes, so predictions, depth distributions and MAC
accounting are bit-identical to a cold run; only ``timings.sampling`` (and
wall-clock) shrink.  Keys are canonical — sorted node ids plus depth (see
:func:`~repro.graph.sampling.support_cache_key`) — so permuted repeats of
the same node-set hit too; the dispatcher stores one bundle per node-set
(built in canonical order) and rebases its ``target_local`` per use through
:meth:`~repro.graph.sampling.SupportBundle.with_target_order`.

:class:`ResultCache` goes one step further, for deployments that opt in: it
replays the *recorded results* of a previously served canonical node-set, so
a hit skips propagation and classification entirely.  Because per-node
predictions and exit depths are batch-order independent, replayed responses
are bit-identical to recomputed ones — but the replayed MACs were not
executed, so the serving stats account them separately from computed MACs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.inference import MACBreakdown, TimingBreakdown
from ..exceptions import ConfigurationError
from ..graph.sampling import support_cache_key


@dataclass(frozen=True)
class CacheCounters:
    """One consistent reading of a cache's counters, taken under its lock.

    Reading ``hits``, ``misses`` and ``len(cache)`` as three separate
    attribute accesses lets concurrent lookups advance the counters between
    reads, producing snapshots where e.g. ``hits + misses`` disagrees with
    the hit rate that was ever true at any instant.  :meth:`_LruCache.
    counters` takes all of them atomically; the serving stats snapshot
    consumes this instead of piecewise reads.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    #: Superset-bundle matches served by :meth:`SubgraphCache.find_superset`.
    #: Counted apart from ``hits`` — a subset hit follows a miss the caller
    #: already recorded, so folding it into ``hits`` would tear the ledger.
    subset_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _LruCache:
    """Thread-safe LRU with hit/miss/eviction accounting (shared machinery).

    Both serving caches key on the canonical batch identity
    (:func:`~repro.graph.sampling.support_cache_key`) and differ only in
    what they store, so the LRU mechanics live here exactly once.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"{type(self).__name__} capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[bytes, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.subset_hits = 0

    @staticmethod
    def key_for(node_ids: np.ndarray, depth: int) -> bytes:
        """Canonical cache key of a batch (order-insensitive; see module docstring)."""
        return support_cache_key(node_ids, depth)

    def get(self, key: bytes):
        """Look up an entry, refreshing its recency; counts the hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: bytes, entry) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry beyond capacity.

        Concurrent workers may race to insert the same key after missing
        together; the second insert simply refreshes the first — entries for
        the same key are interchangeable by construction.
        """
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def peek(self, key: bytes):
        """Like :meth:`get` but without hit/miss accounting.

        The prefetch pipeline re-checks keys whose miss the dispatcher
        already counted (a sibling fetch may have inserted the bundle in the
        meantime); counting that second lookup would double-book the stats
        relative to serialized execution.  Recency is still refreshed — the
        entry is about to be used.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def counters(self) -> CacheCounters:
        """All counters in one consistent reading (see :class:`CacheCounters`)."""
        with self._lock:
            return CacheCounters(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
                subset_hits=self.subset_hits,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class SubgraphCache(_LruCache):
    """Thread-safe LRU of ``key -> SupportBundle`` with hit/miss accounting."""

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the cached bundles."""
        with self._lock:
            return sum(bundle.nbytes for bundle in self._entries.values())

    def find_superset(
        self,
        sorted_ids: np.ndarray,
        depth: int,
        *,
        scan_limit: int = 64,
    ):
        """Find a cached bundle whose node set contains ``sorted_ids``.

        The wave dispatcher calls this after an exact-key miss (which the
        caller has already counted): a previously cached union whose target
        set is a superset of the request can serve it by slicing
        (:func:`~repro.graph.sampling.slice_support_bundle`).  Scans at most
        ``scan_limit`` entries, most-recent first — recency correlates with
        reuse, and an O(capacity) scan per miss would defeat the cache.

        Returns ``(superset_targets, bundle)`` or ``None``.  A match
        refreshes recency through the :meth:`peek` path — **not**
        :meth:`get` — so the hit/miss ledger the dispatcher keeps stays
        consistent; matches are tallied in the separate ``subset_hits``
        counter instead.
        """
        sorted_ids = np.ascontiguousarray(sorted_ids, dtype=np.int64)
        depth_prefix = depth.to_bytes(8, "little")
        with self._lock:
            matched_key = None
            superset = None
            for scanned, key in enumerate(reversed(self._entries)):
                if scanned >= scan_limit:
                    break
                if not key.startswith(depth_prefix):
                    continue
                candidate = np.frombuffer(key[8:], dtype=np.int64)
                if candidate.shape[0] <= sorted_ids.shape[0]:
                    # Equal-size supersets are exact matches, which the
                    # caller's get() already ruled out.
                    continue
                pos = np.searchsorted(candidate, sorted_ids)
                if np.all(pos < candidate.shape[0]) and np.array_equal(
                    candidate[pos], sorted_ids
                ):
                    matched_key = key
                    superset = candidate
                    break
            if matched_key is None:
                return None
            # peek-path recency refresh: no hit/miss accounting.
            self._entries.move_to_end(matched_key)
            self.subset_hits += 1
            return superset, self._entries[matched_key]


@dataclass(frozen=True)
class CachedResult:
    """Recorded outcome of one served node-set, stored in canonical order.

    ``predictions``/``depths`` are indexed by the canonical (sorted) batch
    position; a replay for any permutation of the set gathers them through
    the ``rank`` permutation of :func:`~repro.graph.sampling.canonical_order`.
    ``macs``/``timings`` are the breakdowns of the recorded execution — work
    that a replay does *not* perform, reported separately by the stats.
    """

    predictions: np.ndarray
    depths: np.ndarray
    macs: MACBreakdown
    timings: TimingBreakdown

    @property
    def num_nodes(self) -> int:
        return int(self.predictions.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.predictions.nbytes + self.depths.nbytes)


class ResultCache(_LruCache):
    """Thread-safe LRU of ``canonical key -> CachedResult`` (opt-in replay).

    Enabled by ``ServingConfig.result_cache_capacity > 0``.  Only exact
    canonical node-set repeats hit — a batch containing one extra node is a
    miss, because its predictions would require real propagation.
    """
