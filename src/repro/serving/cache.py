"""LRU cache of supporting-subgraph bundles for streaming workloads.

Consecutive batches of a streaming workload often repeat: recommendation
sessions re-score the same item sets, fraud services re-check the same
account cohorts, dashboards re-issue identical queries.  The sampling
products of such a batch — the k-hop BFS ordering, the local normalized
adjacency in raw CSR form and the gathered hop-0 feature rows, packaged as a
:class:`~repro.graph.sampling.SupportBundle` — depend only on the (ordered)
node-id sequence and the deployment, so they can be replayed verbatim.

A cache hit removes the *entire* sampling stage from a served batch while
every MAC-counted operation (propagation, exit decisions, classification)
still executes, so predictions, depth distributions and MAC accounting are
bit-identical to a cold run; only ``timings.sampling`` (and wall-clock)
shrink.  Keys are order-sensitive (see
:func:`~repro.graph.sampling.support_cache_key`): the hop-ordered local
numbering baked into a bundle is only valid for a byte-identical batch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.sampling import SupportBundle, support_cache_key


class SubgraphCache:
    """Thread-safe LRU of ``key -> SupportBundle`` with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"SubgraphCache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[bytes, SupportBundle] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(node_ids: np.ndarray, depth: int) -> bytes:
        """Cache key of a batch (order-sensitive; see module docstring)."""
        return support_cache_key(node_ids, depth)

    def get(self, key: bytes) -> SupportBundle | None:
        """Look up a bundle, refreshing its recency; counts the hit or miss."""
        with self._lock:
            bundle = self._entries.get(key)
            if bundle is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return bundle

    def put(self, key: bytes, bundle: SupportBundle) -> None:
        """Insert (or refresh) a bundle, evicting the LRU entry beyond capacity.

        Concurrent workers may race to insert the same key after missing
        together; the second insert simply refreshes the first — bundles for
        the same key are interchangeable by construction.
        """
        with self._lock:
            self._entries[key] = bundle
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the cached bundles."""
        with self._lock:
            return sum(bundle.nbytes for bundle in self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
