"""One fluent entry point for standing up a sharded serving fleet.

Configuring a fleet used to mean walking three layers by hand — prepare
the :class:`~repro.shard.ShardedPredictor`, mutate its store
(``use_transport`` / ``use_replicated_transport`` / ``use_tiered_features``
/ ``use_tracer``), then wrap a :class:`~repro.shard.ShardRouter` around it.
:class:`ClusterBuilder` subsumes all of that behind one declarative chain::

    cluster = (
        ClusterBuilder(predictor)
        .graph(graph, features)
        .shards(4)
        .replicated(rails=2)
        .tiered_features(budget_bytes=1 << 20)
        .traced(tracer)
        .wave(width=4)
        .build()
    )
    with cluster:
        responses = cluster.predict_many(request_stream)

Every step records intent; nothing touches the predictor until
:meth:`ClusterBuilder.build`, which applies the steps in dependency order
(prepare → transport → feature tiers → router) and returns a
:class:`Cluster` — a thin lifecycle wrapper over the router.  The old
store mutators remain as :class:`DeprecationWarning` shims that delegate
to the same internal setters the builder uses, so existing deployments
keep working while migrating.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ..core.config import ServingConfig, ShardConfig
from ..exceptions import ConfigurationError
from ..obs.registry import MetricsRegistry
from .queue import SubmitOptions

if TYPE_CHECKING:  # runtime imports are lazy — repro.shard imports this package
    from ..shard.predictor import ShardedPredictor
    from ..shard.router import RoutedRequest, RoutedResponse, ShardRouter
    from ..shard.stats import ShardedStatsSnapshot

__all__ = ["Cluster", "ClusterBuilder"]


class ClusterBuilder:
    """Fluent facade over predictor preparation, store wiring and routing.

    Each chained call stores a declaration and returns ``self``;
    :meth:`build` materializes the fleet.  A builder is single-shot —
    reusing it after ``build()`` raises, because the predictor it
    configured is now owned by the returned :class:`Cluster`.
    """

    def __init__(
        self,
        predictor: ShardedPredictor,
        serving_config: ServingConfig | None = None,
    ) -> None:
        self._predictor = predictor
        self._serving_config = serving_config
        self._graph = None
        self._features = None
        self._shard_config: ShardConfig | None = None
        self._plan = None
        self._transport = None
        self._replicated: dict | None = None
        self._tiered: dict | None = None
        self._tracer = None
        self._wave_width: int | None = None
        self._clock = None
        self._registry: MetricsRegistry | None = None
        self._built = False

    # -- declarations ---------------------------------------------------- #
    def graph(self, graph, features) -> "ClusterBuilder":
        """Deploy onto ``graph``/``features`` (required unless prepared)."""
        self._graph = graph
        self._features = features
        return self

    def shards(
        self, num_shards: int, *, strategy: str = "degree_balanced", **kwargs
    ) -> "ClusterBuilder":
        """Partition into ``num_shards`` shards (``ShardConfig`` knobs pass through)."""
        self._shard_config = ShardConfig(
            num_shards=num_shards, strategy=strategy, **kwargs
        )
        return self

    def plan(self, plan) -> "ClusterBuilder":
        """Deploy onto a pre-built :class:`~repro.shard.partitioner.ShardPlan`.

        The versioned-rollout path: prepare the successor deployment onto
        ``plan`` (typically ``active_plan.with_version(...)``) and hand the
        built cluster's predictor to :meth:`Cluster.install_plan`.
        """
        self._plan = plan
        return self

    def transport(self, transport) -> "ClusterBuilder":
        """Fetch through ``transport`` — an instance, or a callable of the store.

        Subsumes ``prepare(transport=...)`` and ``use_transport``.
        Mutually exclusive with :meth:`replicated`, which builds its own
        transport.
        """
        self._transport = transport
        return self

    def replicated(self, rails=None, **kwargs) -> "ClusterBuilder":
        """Fetch through replica rails (``use_replicated_transport`` knobs).

        ``rails`` is an int (build that many in-process rails), a list of
        :class:`~repro.transport.ShardTransport` rails, a callable taking
        the prepared store and returning such a list (for rails that wrap
        the store's own shard blocks), or ``None`` (one rail per
        ``plan.max_replication``).
        """
        self._replicated = {"rails": rails, **kwargs}
        return self

    def tiered_features(self, budget_bytes: int, **kwargs) -> "ClusterBuilder":
        """Cap resident feature rows fleet-wide (``use_tiered_features`` knobs)."""
        self._tiered = {"budget_bytes": budget_bytes, **kwargs}
        return self

    def traced(self, tracer) -> "ClusterBuilder":
        """Attach one tracer to the router, servers, store and transport."""
        self._tracer = tracer
        return self

    def wave(self, width: int) -> "ClusterBuilder":
        """Fuse up to ``width`` ready micro-batches per engine sweep.

        Sets ``ServingConfig.wave_width`` on every per-shard server (see
        :mod:`repro.serving.wave` for the equivalence and MAC-attribution
        contract).
        """
        self._wave_width = width
        return self

    def serving(self, config: ServingConfig) -> "ClusterBuilder":
        """Use ``config`` for every per-shard server (else the default)."""
        self._serving_config = config
        return self

    def clock(self, clock) -> "ClusterBuilder":
        """Drive every server off ``clock`` (tests use a FakeClock)."""
        self._clock = clock
        return self

    def registry(self, registry: MetricsRegistry) -> "ClusterBuilder":
        """Publish fleet metrics into an existing registry."""
        self._registry = registry
        return self

    # -- materialization ------------------------------------------------- #
    def build_predictor(self) -> "ShardedPredictor":
        """Apply every declaration except routing; returns the predictor.

        The generation-build entry point: a versioned rollout (or an
        :class:`~repro.obs.AutoRebalancer` build callable) needs a fully
        wired successor predictor to hand to
        :meth:`~repro.shard.router.ShardRouter.install_plan`, while the
        *existing* router keeps serving.  Consumes the builder like
        :meth:`build`; serving-only declarations (``serving``, ``wave``,
        ``clock``, ``registry``) are ignored here — they belong to the
        router the predictor will join.
        """
        predictor = self._configure_predictor()
        self._built = True
        return predictor

    def build(self) -> "Cluster":
        """Apply the declarations in dependency order; returns the fleet."""
        predictor = self._configure_predictor()
        serving_config = (
            self._serving_config
            if self._serving_config is not None
            else ServingConfig()
        )
        if self._wave_width is not None:
            serving_config = replace(serving_config, wave_width=self._wave_width)
        from ..shard.router import ShardRouter

        router = ShardRouter(
            predictor,
            serving_config,
            clock=self._clock,
            tracer=self._tracer,
            registry=self._registry,
        )
        self._built = True
        return Cluster(router)

    def _configure_predictor(self) -> "ShardedPredictor":
        """Prepare the predictor and wire its store per the declarations."""
        if self._built:
            raise ConfigurationError(
                "this ClusterBuilder already built a Cluster; create a new "
                "builder per fleet"
            )
        if self._transport is not None and self._replicated is not None:
            raise ConfigurationError(
                "transport(...) and replicated(...) are mutually exclusive: "
                "the replicated rails *are* the transport"
            )
        predictor = self._predictor
        if not predictor.prepared:
            if self._graph is None or self._features is None:
                raise ConfigurationError(
                    "the predictor is not prepared: give the builder "
                    ".graph(graph, features) (and .shards(k))"
                )
            if self._shard_config is None:
                raise ConfigurationError(
                    "the predictor is not prepared: give the builder "
                    ".shards(num_shards)"
                )
            predictor.prepare(
                self._graph,
                self._features,
                self._shard_config,
                plan=self._plan,
            )
        elif self._graph is not None or self._shard_config is not None:
            raise ConfigurationError(
                "the predictor is already prepared; drop .graph()/.shards() "
                "or pass an unprepared predictor"
            )
        store = predictor.store
        if self._transport is not None:
            transport = self._transport
            if callable(transport) and not hasattr(transport, "fetch"):
                transport = transport(store)
            store._set_transport(transport)
        elif self._replicated is not None:
            spec = dict(self._replicated)
            rails = spec.pop("rails", None)
            if callable(rails):
                rails = rails(store)
            elif isinstance(rails, int):
                from ..transport import LocalTransport

                rails = [LocalTransport(store.shards) for _ in range(rails)]
            store._set_replicated_transport(rails, **spec)
        if self._tiered is not None:
            store._set_tiered_features(**self._tiered)
        return predictor


class Cluster:
    """A built serving fleet: lifecycle wrapper over a :class:`ShardRouter`.

    Everything request-shaped delegates to the router; the wrapper adds
    nothing but a stable handle that a ``with`` block can own.  Reach the
    underlying layers through :attr:`router`, :attr:`predictor` and
    :attr:`store` when a test or an operator tool needs them.
    """

    def __init__(self, router: ShardRouter) -> None:
        self.router = router

    # -- composition roots ---------------------------------------------- #
    @property
    def predictor(self) -> ShardedPredictor:
        return self.router.predictor

    @property
    def store(self):
        return self.router.predictor.store

    @property
    def servers(self) -> dict:
        return self.router.servers

    @property
    def plan_version(self) -> int:
        return self.router.plan_version

    # -- request surface ------------------------------------------------- #
    def submit(
        self, node_ids, options: SubmitOptions | None = None, **kwargs
    ) -> RoutedRequest:
        return self.router.submit(node_ids, options, **kwargs)

    def predict_many(self, batches, *, timeout=None) -> "list[RoutedResponse]":
        return self.router.predict_many(batches, timeout=timeout)

    def drain(self, timeout=None) -> None:
        self.router.drain(timeout=timeout)

    # -- observability ---------------------------------------------------- #
    def stats(self) -> ShardedStatsSnapshot:
        return self.router.stats()

    def interval_stats(self, *, reset: bool = True) -> dict:
        return self.router.interval_stats(reset=reset)

    def traffic(self) -> dict:
        return self.router.traffic()

    def metrics_text(self) -> str:
        return self.router.metrics_text()

    def controller_state(self) -> dict:
        return self.router.controller_state()

    # -- rollout ---------------------------------------------------------- #
    def install_plan(self, predictor: ShardedPredictor) -> int:
        return self.router.install_plan(predictor)

    def finish_rollout(self, timeout=None) -> int:
        return self.router.finish_rollout(timeout=timeout)

    def rollout_state(self) -> "list[dict]":
        return self.router.rollout_state()

    # -- lifecycle --------------------------------------------------------- #
    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
