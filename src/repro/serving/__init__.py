"""Online serving subsystem for node-adaptive inference.

The paper's deployment scenario (Sec. V) is *online*: latency-critical
services must classify unseen nodes as they arrive.  This package turns the
offline :class:`~repro.core.NAIPredictor` into that service:

* :class:`RequestQueue` — bounded FIFO with configurable backpressure
  (block / reject / shed-oldest);
* :class:`MicroBatcher` — dynamic micro-batching under a latency budget
  (``max_batch_size`` nodes, ``max_wait_ms`` of the oldest request);
* :class:`BatchController` — the adaptive-batching policy surface
  (:class:`StaticPolicy`, :class:`QueuePressurePolicy`,
  :class:`MarginalLatencyPolicy`) that moves those limits with load;
* :class:`SubgraphCache` — LRU reuse of supporting-subgraph bundles across
  recurring batches of a streaming workload;
* :class:`WorkerPool` — thread (default) or fork-process workers, each
  owning a private :class:`~repro.core.inference.BatchEngine`;
* :class:`PrefetchPipeline` — background fetchers that overlap a sharded
  deployment's cross-shard support fetch rounds with the pool's compute
  (``ServingConfig.prefetch_depth``; see ``docs/prefetch.md``);
* :class:`InferenceServer` — the glue, exposing ``submit`` / ``result``
  semantics plus a :class:`ServingStatsSnapshot` observability surface
  (throughput, p50/p95/p99 latency, cache hit rate, queue depth).

Every knob lives in :class:`~repro.core.config.ServingConfig`; see
``docs/serving.md`` for a guided tour and ``benchmarks/bench_serving.py``
for the throughput/equivalence benchmark behind ``BENCH_serving.json``.
"""

from .batcher import MicroBatch, MicroBatcher
from .cache import CacheCounters, CachedResult, ResultCache, SubgraphCache
from .clock import MONOTONIC_CLOCK, Clock, FakeClock, MonotonicClock
from .prefetch import BusyTracker, PrefetchPipeline, PrefetchTask
from .controller import (
    BatchController,
    BatchLimits,
    MarginalLatencyPolicy,
    QueuePressurePolicy,
    StaticPolicy,
    build_controller,
)
from .queue import (
    NEW_TRACE,
    InferenceRequest,
    RequestQueue,
    ServingResponse,
    SubmitOptions,
)
from .server import InferenceServer
from .cluster import Cluster, ClusterBuilder
from .wave import WaveAttribution, WaveResult, attribute_wave_macs, execute_wave
from .simulator import (
    LinearServiceModel,
    SimulationReport,
    ramp_arrivals,
    simulate_policy,
)
from .stats import ServingStats, ServingStatsSnapshot, WorkerStats
from .worker import WorkerPool, WorkItem, WorkOutput

__all__ = [
    "MONOTONIC_CLOCK",
    "NEW_TRACE",
    "BatchController",
    "BatchLimits",
    "BusyTracker",
    "CacheCounters",
    "CachedResult",
    "Clock",
    "Cluster",
    "ClusterBuilder",
    "FakeClock",
    "InferenceRequest",
    "InferenceServer",
    "LinearServiceModel",
    "MarginalLatencyPolicy",
    "MicroBatch",
    "MicroBatcher",
    "MonotonicClock",
    "PrefetchPipeline",
    "PrefetchTask",
    "QueuePressurePolicy",
    "RequestQueue",
    "ResultCache",
    "ServingResponse",
    "ServingStats",
    "ServingStatsSnapshot",
    "SimulationReport",
    "StaticPolicy",
    "SubgraphCache",
    "SubmitOptions",
    "WaveAttribution",
    "WaveResult",
    "WorkItem",
    "WorkOutput",
    "WorkerPool",
    "WorkerStats",
    "attribute_wave_macs",
    "build_controller",
    "execute_wave",
    "ramp_arrivals",
    "simulate_policy",
]
