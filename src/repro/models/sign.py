"""SIGN backbone (Frasca et al., 2020) — Eq. (3) of the paper.

SIGN transforms each propagated matrix with its own linear layer, concatenates
the results and classifies the concatenation:

    X_SIGN^(k) = X^(0) W^(0) || X^(1) W^(1) || ... || X^(k) W^(k)

The depth-``l`` classifier uses the prefix ``X^(0..l)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.modules import MLP, Linear
from ..nn.tensor import Tensor, concatenate
from .base import DepthwiseClassifier, ScalableGNN, mlp_macs_per_node


class SIGNClassifier(DepthwiseClassifier):
    """Per-depth linear transforms + concatenation + MLP head."""

    def __init__(
        self,
        depth: int,
        num_features: int,
        num_classes: int,
        *,
        transform_dim: int = 32,
        hidden_dims: Sequence[int] = (),
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(depth)
        if transform_dim < 1:
            raise ConfigurationError(f"transform_dim must be positive, got {transform_dim}")
        self.num_features = num_features
        self.num_classes = num_classes
        self.transform_dim = transform_dim
        self.transforms = [
            Linear(num_features, transform_dim, rng=rng) for _ in range(depth + 1)
        ]
        self.head = MLP(
            transform_dim * (depth + 1),
            num_classes,
            hidden_dims,
            dropout=dropout,
            rng=rng,
        )

    def forward(self, propagated: Sequence[Tensor | np.ndarray]) -> Tensor:
        inputs = self._validate_inputs(propagated)
        transformed = [
            transform(matrix).relu()
            for transform, matrix in zip(self.transforms, inputs)
        ]
        return self.head(concatenate(transformed, axis=1))

    def classification_macs_per_node(self) -> float:
        transform_macs = (self.depth + 1) * self.num_features * self.transform_dim
        head_macs = mlp_macs_per_node(
            self.transform_dim * (self.depth + 1), self.head.hidden_dims, self.num_classes
        )
        return float(transform_macs + head_macs)


class SIGN(ScalableGNN):
    """Scalable Inception Graph Neural network backbone."""

    name = "SIGN"

    def __init__(self, *args, transform_dim: int = 32, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.transform_dim = transform_dim

    def make_classifier(self, depth: int) -> SIGNClassifier:
        return SIGNClassifier(
            depth,
            self.num_features,
            self.num_classes,
            transform_dim=self.transform_dim,
            hidden_dims=self.hidden_dims,
            dropout=self.dropout,
            rng=self.rng,
        )
