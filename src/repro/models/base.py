"""Backbone abstractions shared by all scalable GNNs.

A *backbone* (SGC, SIGN, S2GC, GAMLP) is decomposed into two pieces that the
NAI framework needs to manipulate independently:

* the non-parametric **propagation** ``X^(l) = Â^l X`` (identical across
  backbones, precomputed at training time and executed online at inference
  time), and
* a family of **depth-wise classifiers** ``f^(1) .. f^(k)``, where ``f^(l)``
  consumes the propagated features up to depth ``l`` and produces class
  logits.  Different backbones differ only in how ``f^(l)`` combines
  ``X^(0..l)``: SGC uses the deepest matrix only, SIGN concatenates linear
  transformations, S2GC averages, GAMLP combines with node-wise attention.

Keeping one interface for all four lets the NAI inference engine, the
Inception Distillation trainer and the gate trainer stay backbone-agnostic,
exactly as claimed by the paper's generalization experiments (Tables IX-XI).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..graph.normalization import NormalizationScheme
from ..graph.propagation import propagate_features
from ..graph.sparse import CSRGraph
from ..nn.modules import Module
from ..nn.tensor import Tensor


class DepthwiseClassifier(Module, ABC):
    """A classifier ``f^(depth)`` over propagated features ``X^(0..depth)``.

    Sub-classes must set ``self.depth`` and implement :meth:`forward` over a
    list of per-depth feature tensors ``[X^(0), ..., X^(depth)]`` (each of
    shape ``(batch, f)``) and :meth:`classification_macs_per_node`, which the
    metrics module uses for MAC accounting.
    """

    def __init__(self, depth: int) -> None:
        super().__init__()
        if depth < 0:
            raise ConfigurationError(f"classifier depth must be non-negative, got {depth}")
        self.depth = depth

    def _validate_inputs(self, propagated: Sequence[Tensor | np.ndarray]) -> list[Tensor]:
        if len(propagated) < self.depth + 1:
            raise ShapeError(
                f"classifier at depth {self.depth} needs {self.depth + 1} propagated "
                f"matrices (X^(0..{self.depth})), received {len(propagated)}"
            )
        return [Tensor.as_tensor(matrix) for matrix in propagated[: self.depth + 1]]

    @abstractmethod
    def forward(self, propagated: Sequence[Tensor | np.ndarray]) -> Tensor:
        """Return class logits for the propagated features up to ``self.depth``."""

    @abstractmethod
    def classification_macs_per_node(self) -> float:
        """Multiply-accumulate operations needed to classify a single node."""


class ScalableGNN(ABC):
    """A scalable-GNN backbone: propagation recipe + depth-wise classifier factory.

    Parameters
    ----------
    num_features:
        Input feature dimension ``f``.
    num_classes:
        Number of target classes ``c``.
    depth:
        Maximum propagation depth ``k``.
    hidden_dims:
        Hidden layer sizes of each classifier MLP (empty = linear classifier).
    dropout:
        Dropout rate used inside the classifiers.
    gamma:
        Convolution coefficient of Eq. (1); the paper uses the symmetric
        normalization (``gamma=0.5``) everywhere.
    rng:
        Source of randomness for weight initialisation.
    """

    #: short name used in result tables ("SGC", "SIGN", ...)
    name: str = "scalable-gnn"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        depth: int,
        *,
        hidden_dims: Sequence[int] = (),
        dropout: float = 0.0,
        gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"propagation depth must be at least 1, got {depth}")
        if num_features < 1 or num_classes < 2:
            raise ConfigurationError("num_features must be >=1 and num_classes >=2")
        self.num_features = num_features
        self.num_classes = num_classes
        self.depth = depth
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.gamma = gamma
        self.rng = np.random.default_rng(rng)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def precompute(self, graph: CSRGraph, features: np.ndarray) -> list[np.ndarray]:
        """Precompute ``[X^(0), ..., X^(k)]`` on ``graph`` (Figure 1b)."""
        return propagate_features(graph, features, self.depth, gamma=self.gamma)

    # ------------------------------------------------------------------ #
    # Classifier factory
    # ------------------------------------------------------------------ #
    @abstractmethod
    def make_classifier(self, depth: int) -> DepthwiseClassifier:
        """Instantiate the classifier ``f^(depth)`` for this backbone."""

    def make_all_classifiers(self) -> list[DepthwiseClassifier]:
        """Instantiate ``f^(1) .. f^(k)`` (index 0 of the list is ``f^(1)``)."""
        return [self.make_classifier(depth) for depth in range(1, self.depth + 1)]

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the MAC accounting
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, object]:
        """Human-readable hyper-parameter summary."""
        return {
            "name": self.name,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "depth": self.depth,
            "hidden_dims": list(self.hidden_dims),
            "dropout": self.dropout,
            "gamma": str(self.gamma),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(f={self.num_features}, c={self.num_classes}, k={self.depth})"


def mlp_macs_per_node(in_features: int, hidden_dims: Sequence[int], out_features: int) -> float:
    """MACs of one forward pass of an MLP for a single input row."""
    dims = [in_features, *hidden_dims, out_features]
    return float(sum(dims[i] * dims[i + 1] for i in range(len(dims) - 1)))
