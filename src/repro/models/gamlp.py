"""GAMLP backbone (Zhang et al., 2022) — Eq. (5) of the paper.

GAMLP combines the propagated features at different depths with *node-wise*
attention:

    X_GAMLP^(k) = sum_{l=0}^{k} T^(l) X^(l)

where ``T^(l)`` are diagonal per-node attention matrices.  We implement the
JK-style attention of the basic GAMLP variant: each depth receives a score
``q^(l)_i = sigma(X^(l)_i s^(l))`` from a trainable vector ``s^(l)``, scores
are soft-maxed over depths and used to weight the per-depth features before an
MLP head classifies the combination.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.init import normal
from ..nn.modules import MLP, Parameter
from ..nn.tensor import Tensor, concatenate
from .base import DepthwiseClassifier, ScalableGNN, mlp_macs_per_node


class GAMLPClassifier(DepthwiseClassifier):
    """Node-wise attention combination of ``X^(0..depth)`` + MLP head."""

    def __init__(
        self,
        depth: int,
        num_features: int,
        num_classes: int,
        *,
        hidden_dims: Sequence[int] = (),
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(depth)
        self.num_features = num_features
        self.num_classes = num_classes
        generator = rng if rng is not None else np.random.default_rng()
        self.attention_vectors = [
            Parameter(
                normal(num_features, 1, scale=0.05, rng=generator), name=f"s_{layer}"
            )
            for layer in range(depth + 1)
        ]
        self.head = MLP(num_features, num_classes, hidden_dims, dropout=dropout, rng=generator)

    def _attention_weights(self, inputs: list[Tensor]) -> Tensor:
        """Per-node soft-maxed attention scores over depths, shape ``(batch, depth+1)``."""
        scores = [
            (matrix @ vector).sigmoid()
            for matrix, vector in zip(inputs, self.attention_vectors)
        ]
        stacked = concatenate(scores, axis=1)
        shifted = stacked - Tensor(stacked.data.max(axis=1, keepdims=True))
        exponentials = shifted.exp()
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def forward(self, propagated: Sequence[Tensor | np.ndarray]) -> Tensor:
        inputs = self._validate_inputs(propagated)
        weights = self._attention_weights(inputs)
        combined = inputs[0] * weights[:, 0:1]
        for index in range(1, len(inputs)):
            combined = combined + inputs[index] * weights[:, index:index + 1]
        return self.head(combined)

    def classification_macs_per_node(self) -> float:
        attention = (self.depth + 1) * self.num_features        # score projections
        combination = (self.depth + 1) * self.num_features      # weighted sum
        head = mlp_macs_per_node(self.num_features, self.head.hidden_dims, self.num_classes)
        return float(attention + combination + head)


class GAMLP(ScalableGNN):
    """Graph Attention Multi-Layer Perceptron backbone (basic attention variant)."""

    name = "GAMLP"

    def make_classifier(self, depth: int) -> GAMLPClassifier:
        return GAMLPClassifier(
            depth,
            self.num_features,
            self.num_classes,
            hidden_dims=self.hidden_dims,
            dropout=self.dropout,
            rng=self.rng,
        )
