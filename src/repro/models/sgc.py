"""SGC backbone (Wu et al., 2019) — Eq. (2) of the paper.

SGC removes the intermediate non-linear transformations of GCN and feeds the
propagated feature ``X^(k) = Â^k X`` into a single classifier.  Its depth-``l``
classifier therefore consumes only ``X^(l)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.modules import MLP
from ..nn.tensor import Tensor
from .base import DepthwiseClassifier, ScalableGNN, mlp_macs_per_node


class SGCClassifier(DepthwiseClassifier):
    """MLP (or linear) classifier applied to ``X^(depth)`` only."""

    def __init__(
        self,
        depth: int,
        num_features: int,
        num_classes: int,
        *,
        hidden_dims: Sequence[int] = (),
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(depth)
        self.mlp = MLP(num_features, num_classes, hidden_dims, dropout=dropout, rng=rng)
        self.num_features = num_features
        self.num_classes = num_classes

    def forward(self, propagated: Sequence[Tensor | np.ndarray]) -> Tensor:
        inputs = self._validate_inputs(propagated)
        return self.mlp(inputs[self.depth])

    def classification_macs_per_node(self) -> float:
        return mlp_macs_per_node(self.num_features, self.mlp.hidden_dims, self.num_classes)


class SGC(ScalableGNN):
    """Simplified Graph Convolution backbone."""

    name = "SGC"

    def make_classifier(self, depth: int) -> SGCClassifier:
        return SGCClassifier(
            depth,
            self.num_features,
            self.num_classes,
            hidden_dims=self.hidden_dims,
            dropout=self.dropout,
            rng=self.rng,
        )
