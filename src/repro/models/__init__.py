"""Scalable GNN backbones: SGC, SIGN, S2GC and GAMLP."""

from .base import DepthwiseClassifier, ScalableGNN, mlp_macs_per_node
from .gamlp import GAMLP, GAMLPClassifier
from .registry import available_backbones, make_backbone
from .s2gc import S2GC, S2GCClassifier
from .sgc import SGC, SGCClassifier
from .sign import SIGN, SIGNClassifier

__all__ = [
    "DepthwiseClassifier",
    "GAMLP",
    "GAMLPClassifier",
    "S2GC",
    "S2GCClassifier",
    "SGC",
    "SGCClassifier",
    "SIGN",
    "SIGNClassifier",
    "ScalableGNN",
    "available_backbones",
    "make_backbone",
    "mlp_macs_per_node",
]
