"""Backbone registry: build a scalable GNN by name."""

from __future__ import annotations

from typing import Sequence, Type

import numpy as np

from ..exceptions import ConfigurationError
from ..graph.normalization import NormalizationScheme
from .base import ScalableGNN
from .gamlp import GAMLP
from .s2gc import S2GC
from .sgc import SGC
from .sign import SIGN

_BACKBONES: dict[str, Type[ScalableGNN]] = {
    "sgc": SGC,
    "sign": SIGN,
    "s2gc": S2GC,
    "gamlp": GAMLP,
}


def available_backbones() -> list[str]:
    """Names accepted by :func:`make_backbone`."""
    return sorted(_BACKBONES)


def make_backbone(
    name: str,
    num_features: int,
    num_classes: int,
    depth: int,
    *,
    hidden_dims: Sequence[int] = (),
    dropout: float = 0.0,
    gamma: str | float | NormalizationScheme = NormalizationScheme.SYMMETRIC,
    rng: np.random.Generator | int | None = None,
    **backbone_kwargs,
) -> ScalableGNN:
    """Instantiate a backbone by (case-insensitive) name.

    ``backbone_kwargs`` are forwarded to the specific backbone class, e.g.
    ``transform_dim`` for SIGN.
    """
    key = name.lower()
    if key not in _BACKBONES:
        raise ConfigurationError(
            f"unknown backbone {name!r}; available: {available_backbones()}"
        )
    backbone_cls = _BACKBONES[key]
    return backbone_cls(
        num_features,
        num_classes,
        depth,
        hidden_dims=hidden_dims,
        dropout=dropout,
        gamma=gamma,
        rng=rng,
        **backbone_kwargs,
    )
