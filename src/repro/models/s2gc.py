"""S2GC backbone (Zhu & Koniusz, 2021) — Eq. (4) of the paper.

Simple Spectral Graph Convolution averages the propagated features over all
depths:

    X_S2GC^(k) = (1 / (k + 1)) * sum_{l=0}^{k} X^(l)

and feeds the average to a classifier.  The depth-``l`` classifier averages
the prefix ``X^(0..l)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.modules import MLP
from ..nn.tensor import Tensor
from .base import DepthwiseClassifier, ScalableGNN, mlp_macs_per_node


class S2GCClassifier(DepthwiseClassifier):
    """Average of the propagated prefix followed by an MLP."""

    def __init__(
        self,
        depth: int,
        num_features: int,
        num_classes: int,
        *,
        hidden_dims: Sequence[int] = (),
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(depth)
        self.num_features = num_features
        self.num_classes = num_classes
        self.mlp = MLP(num_features, num_classes, hidden_dims, dropout=dropout, rng=rng)

    def forward(self, propagated: Sequence[Tensor | np.ndarray]) -> Tensor:
        inputs = self._validate_inputs(propagated)
        total = inputs[0]
        for matrix in inputs[1:]:
            total = total + matrix
        average = total * (1.0 / float(self.depth + 1))
        return self.mlp(average)

    def classification_macs_per_node(self) -> float:
        # Averaging costs one accumulate per depth per feature, plus the MLP.
        aggregation = (self.depth + 1) * self.num_features
        return float(aggregation) + mlp_macs_per_node(
            self.num_features, self.mlp.hidden_dims, self.num_classes
        )


class S2GC(ScalableGNN):
    """Simple Spectral Graph Convolution backbone."""

    name = "S2GC"

    def make_classifier(self, depth: int) -> S2GCClassifier:
        return S2GCClassifier(
            depth,
            self.num_features,
            self.num_classes,
            hidden_dims=self.hidden_dims,
            dropout=self.dropout,
            rng=self.rng,
        )
