"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of the package with a single ``except`` clause while
still being able to discriminate the finer-grained categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphConstructionError(ReproError):
    """Raised when a graph cannot be built from the provided edge data."""


class InvalidNormalizationError(ReproError):
    """Raised when an unsupported convolution coefficient or scheme is requested."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded or validated."""


class ShapeError(ReproError):
    """Raised when tensors or matrices have incompatible shapes."""


class NotFittedError(ReproError):
    """Raised when inference is attempted on a model that has not been trained."""


class ConfigurationError(ReproError):
    """Raised when hyper-parameters are inconsistent or out of range."""


class AutogradError(ReproError):
    """Raised on invalid operations in the autograd engine."""


class BackpressureError(ReproError):
    """Raised when the serving request queue rejects or sheds a request."""


class ServingError(ReproError):
    """Raised on invalid operations against the online serving subsystem."""


class TransportError(ReproError):
    """Raised when a shard transport fetch fails (drop, disconnect, timeout).

    Carries enough context to route a retry: the failing operation, the shard
    that was being fetched from, and whether the transport believes a
    reconnect could succeed (``retryable``).
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        shard_id: int | None = None,
        retryable: bool = True,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.shard_id = shard_id
        self.retryable = retryable
